//! Parallel sharded S1 planning.
//!
//! S1 (reverse-order patching, §3.4) works because punning only creates
//! dependencies on *successor* bytes: every byte a tactic reads, writes or
//! locks for a patch site at `addr` lies in `[addr, addr + H)` for a
//! horizon `H` derived from the tactic geometry (see
//! [`dependency_horizon`]). Two sites further than `H` apart are therefore
//! independent, and the address-sorted patch stream can be cut into shards
//! that plan concurrently.
//!
//! ## Determinism contract
//!
//! For a fixed input, the sharded pipeline's output is **byte-identical
//! for every worker count**. Worker count only sizes the thread pool:
//!
//! * sharding and lane assignment depend only on the request addresses
//!   (shard `i` is planned on lane `i % LANES`, with [`LANES`] fixed);
//! * each lane plans against its own clone of the image and of the initial
//!   address space, with wide-window allocations confined to the lane's
//!   stripe chunks ([`StripeMask`]) so lanes cannot collide;
//! * narrow windows (T1's `256^f` pun windows) cannot honour a stripe and
//!   allocate unmasked; the rare cross-lane collision is detected by a
//!   deterministic merge sweep in shard order, and any invalidated shard
//!   is re-planned sequentially against the merged state;
//! * outputs are stitched in shard (i.e. reverse address) order, so
//!   reports, traps and the first-error choice match the sequential
//!   processing order exactly.
//!
//! Sequential (`jobs: None`) and sharded (`jobs: Some(_)`) runs may place
//! trampolines at different addresses (striping changes the first-fit
//! cursor); tactic coverage — the Table-1 row — is recomputed from the
//! merged shards.

use crate::error::{Error, Result};
use crate::layout::{AddressSpace, StripeMask};
use crate::planner::{PatchRequest, Planner, PlannerParts, RewriteConfig, SiteReport};
use crate::stats::PatchStats;
use e9elf::{Elf, PAGE_SIZE};
use e9x86::insn::Insn;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Number of independent planning lanes. Fixed (not the worker count!) so
/// lane assignment — and therefore the output — never depends on how many
/// threads actually run.
pub const LANES: usize = 8;

/// Stripe chunk size for lane-owned address ranges. One page comfortably
/// holds any standard trampoline (the largest template upper bound is
/// ~64 bytes plus the displaced instruction).
const CHUNK: u64 = PAGE_SIZE;

/// Maximum forward displacement of the rel8 `J_short` used by T3 (S1
/// restricts rel8 to forward offsets, so only positive displacements
/// extend the dependency range).
const REL8_MAX_FORWARD: u64 = i8::MAX as u64;

/// Length of a `jmpq rel32` (opcode + 32-bit displacement) — the widest
/// thing a tactic writes or puns at any dependent address.
const JMP_REL32_LEN: u64 = 1 + std::mem::size_of::<i32>() as u64;

/// The forward dependency horizon `H`: every byte the planner reads,
/// writes or locks while patching a site at `addr` lies in
/// `[addr, addr + H)`.
///
/// Derived from the tactic definitions (§3.1–3.3), not hard-coded:
///
/// * B1/B2/T1 pun at the site itself: at most `padding + 5` bytes with
///   `padding < max_insn_len`, i.e. `< max_insn_len + 4`.
/// * T2 puns the *successor*: the farthest touched byte is
///   `succ.end() + 4 < addr + 2·max_insn_len + 4`.
/// * T3's `J_short` jumps up to `2 + rel8_max` forward, and `J_patch` is a
///   punned rel32 jump there: `addr + 2 + rel8_max + jmp_rel32_len`.
///
/// T3 dominates for real instruction lengths, but the formula keeps the
/// `max_insn_len` term so the bound stays safe if tactic geometry grows.
pub fn dependency_horizon() -> u64 {
    e9x86::MAX_INSN_LEN as u64 + REL8_MAX_FORWARD + JMP_REL32_LEN
}

/// Maximum forward extent of each tactic family, for the dominance test
/// (`dependency_horizon()` must be ≥ all of these).
#[cfg(test)]
fn tactic_extents() -> [(&'static str, u64); 3] {
    let l = e9x86::MAX_INSN_LEN as u64;
    [
        ("pun (B1/B2/T1)", l - 1 + JMP_REL32_LEN),
        ("T2 successor eviction", 2 * l - 1 + JMP_REL32_LEN),
        ("T3 neighbour eviction", 2 + REL8_MAX_FORWARD + JMP_REL32_LEN),
    ]
}

/// Partition `requests` into S1-independent shards.
///
/// Returns shards in descending address order (shard 0 holds the highest
/// addresses), each shard internally sorted descending — concatenating the
/// shards reproduces the sequential planner's processing order. A shard
/// boundary is cut wherever the gap between consecutive sites reaches
/// [`dependency_horizon`].
///
/// # Errors
///
/// [`Error::DuplicatePatch`] on duplicate addresses (checked here so every
/// worker sees pre-validated input).
pub fn shard_requests(requests: &[PatchRequest]) -> Result<Vec<Vec<PatchRequest>>> {
    let mut sorted: Vec<PatchRequest> = requests.to_vec();
    sorted.sort_by_key(|r| std::cmp::Reverse(r.addr));
    for w in sorted.windows(2) {
        if w[0].addr == w[1].addr {
            return Err(Error::DuplicatePatch(w[0].addr));
        }
    }
    let h = dependency_horizon();
    let mut shards: Vec<Vec<PatchRequest>> = Vec::new();
    for req in sorted {
        match shards.last_mut() {
            // Descending order: the previous request is the next-higher
            // site. Same shard iff its footprint can reach back past us.
            Some(cur) if cur.last().is_some_and(|p| p.addr - req.addr < h) => cur.push(req),
            _ => shards.push(vec![req]),
        }
    }
    Ok(shards)
}

/// Render a caught panic payload as a message.
fn panic_msg(p: Box<dyn std::any::Any + Send>) -> String {
    p.downcast_ref::<&str>()
        .map(ToString::to_string)
        .or_else(|| p.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "worker panicked (non-string payload)".to_string())
}

/// Run `tasks` to completion on up to `workers` scoped threads.
///
/// Results are returned in task order regardless of scheduling. A panic in
/// a task is caught at the pool boundary and surfaced as
/// [`Error::Internal`] — never a hung join or a poisoned process.
pub fn run_pool<T, F>(workers: usize, tasks: Vec<F>) -> Result<Vec<T>>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    let workers = workers.clamp(1, n.max(1));
    let queue: Mutex<Vec<(usize, F)>> = Mutex::new(tasks.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<std::result::Result<T, String>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let task = match queue.lock() {
                    Ok(mut q) => q.pop(),
                    Err(_) => None,
                };
                let Some((i, task)) = task else { break };
                let out = catch_unwind(AssertUnwindSafe(task)).map_err(panic_msg);
                if let Ok(mut slot) = slots[i].lock() {
                    *slot = Some(out);
                }
            });
        }
    });
    let mut results = Vec::with_capacity(n);
    for (i, slot) in slots.into_iter().enumerate() {
        match slot.into_inner() {
            Ok(Some(Ok(v))) => results.push(v),
            Ok(Some(Err(msg))) => {
                return Err(Error::Internal(format!("planning worker panicked: {msg}")))
            }
            _ => return Err(Error::Internal(format!("planning task {i} never completed"))),
        }
    }
    Ok(results)
}

/// One shard's planning output, tagged with its shard index.
struct ShardRun {
    shard: usize,
    trampolines: Vec<(u64, Vec<u8>)>,
    stats: PatchStats,
    traps: Vec<(u64, u64)>,
    reports: Vec<SiteReport>,
    journal: Vec<(u64, Vec<u8>)>,
}

/// Plan all of a lane's shards (ascending shard index) against the lane's
/// private image and space clones. On error, reports the index of the
/// first failing shard so the merge can pick the globally-first error.
#[allow(clippy::type_complexity)]
fn run_lane(
    lane: usize,
    shard_indices: Vec<usize>,
    mut elf: Elf,
    mut space: AddressSpace,
    insns: &BTreeMap<u64, Insn>,
    cfg: RewriteConfig,
    shards: &[Vec<PatchRequest>],
) -> std::result::Result<Vec<ShardRun>, (usize, Error)> {
    let mask = StripeMask::new(CHUNK, lane as u64, LANES as u64);
    let mut runs = Vec::with_capacity(shard_indices.len());
    for shard in shard_indices {
        let mut planner = Planner::with_space(elf, insns, cfg, space, Some(mask));
        if let Err(e) = planner.patch_all(&shards[shard]) {
            return Err((shard, e));
        }
        let parts = planner.into_parts();
        elf = parts.elf;
        space = parts.space;
        runs.push(ShardRun {
            shard,
            trampolines: parts.trampolines,
            stats: parts.stats,
            traps: parts.traps,
            reports: parts.reports,
            journal: parts.journal,
        });
    }
    Ok(runs)
}

/// The parallel planning pipeline: shard → fan out over a scoped worker
/// pool → deterministic merge. Drop-in replacement for
/// `Planner::new(..).patch_all(..).into_parts()`; used by
/// [`crate::Rewriter::rewrite`] when `cfg.jobs` is `Some(_)`.
///
/// # Errors
///
/// Same errors as the sequential planner, plus [`Error::Internal`] if a
/// worker thread panics. When several shards fail, the error of the
/// first shard in processing order is returned, matching sequential
/// behaviour.
pub fn plan_parallel(
    elf: Elf,
    insns: &BTreeMap<u64, Insn>,
    cfg: RewriteConfig,
    reserved: &[(u64, u64)],
    requests: &[PatchRequest],
) -> Result<PlannerParts> {
    let jobs = cfg.jobs.unwrap_or(1).max(1);
    let shards = shard_requests(requests)?;
    let initial = Planner::initial_space(&elf, &cfg, reserved);

    // Round-robin lane assignment: deterministic, and it balances lanes
    // because neighbouring shards have similar site counts.
    let mut lane_shards: Vec<Vec<usize>> = vec![Vec::new(); LANES];
    for i in 0..shards.len() {
        lane_shards[i % LANES].push(i);
    }

    let shards_ref = &shards;
    let tasks: Vec<_> = lane_shards
        .into_iter()
        .enumerate()
        .filter(|(_, list)| !list.is_empty())
        .map(|(lane, list)| {
            let lane_elf = elf.clone();
            let lane_space = initial.clone();
            move || run_lane(lane, list, lane_elf, lane_space, insns, cfg, shards_ref)
        })
        .collect();
    let lane_results = run_pool(jobs, tasks)?;

    // Gather shard runs; on failure surface the first error in shard
    // (processing) order, as the sequential planner would.
    let mut runs: Vec<ShardRun> = Vec::with_capacity(shards.len());
    let mut first_err: Option<(usize, Error)> = None;
    for r in lane_results {
        match r {
            Ok(list) => runs.extend(list),
            Err((shard, e)) => {
                if first_err.as_ref().is_none_or(|(s, _)| shard < *s) {
                    first_err = Some((shard, e));
                }
            }
        }
    }
    if let Some((_, e)) = first_err {
        return Err(e);
    }
    runs.sort_by_key(|r| r.shard);

    // Merge sweep, in shard order. A shard's net allocation footprint is
    // exactly its trampoline extents (commit paths free slack, rollbacks
    // free fully), so the master space is the initial space plus every
    // kept shard's trampolines. A shard whose trampolines overlap
    // already-merged state — possible only via narrow-window unmasked
    // allocations — is invalidated for sequential re-planning.
    let mut master_space = initial;
    let mut replan: Vec<usize> = Vec::new();
    for (pos, run) in runs.iter().enumerate() {
        let fits = run
            .trampolines
            .iter()
            .all(|(a, b)| master_space.is_free(*a, a.saturating_add(b.len() as u64)));
        if fits {
            for (a, b) in &run.trampolines {
                master_space.reserve(*a, a.saturating_add(b.len() as u64));
            }
        } else {
            replan.push(pos);
        }
    }

    // Replay kept shards' image writes onto the master image.
    let mut master = elf;
    for (pos, run) in runs.iter().enumerate() {
        if replan.binary_search(&pos).is_ok() {
            continue;
        }
        for (addr, bytes) in &run.journal {
            master
                .write_at(*addr, bytes)
                .map_err(|e| Error::Internal(format!("journal replay at {addr:#x}: {e}")))?;
        }
    }

    // Re-plan invalidated shards sequentially against the merged state.
    // Deterministic (shard order, no masking) and safe: the fence
    // guarantees their reads are unaffected by other shards' writes.
    for &pos in &replan {
        let shard = runs[pos].shard;
        let mut planner = Planner::with_space(master, insns, cfg, master_space, None);
        planner.patch_all(&shards[shard])?;
        let parts = planner.into_parts();
        master = parts.elf;
        master_space = parts.space;
        runs[pos] = ShardRun {
            shard,
            trampolines: parts.trampolines,
            stats: parts.stats,
            traps: parts.traps,
            reports: parts.reports,
            journal: Vec::new(),
        };
    }

    // Stitch outputs in shard (reverse address) order and recompute the
    // aggregate statistics.
    let mut parts = PlannerParts {
        elf: master,
        trampolines: Vec::new(),
        stats: PatchStats::default(),
        traps: Vec::new(),
        space: master_space,
        reports: Vec::new(),
        journal: Vec::new(),
    };
    for run in runs {
        parts.trampolines.extend(run.trampolines);
        parts.stats.merge(&run.stats);
        parts.traps.extend(run.traps);
        parts.reports.extend(run.reports);
    }
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trampoline::Template;

    fn reqs(addrs: &[u64]) -> Vec<PatchRequest> {
        addrs
            .iter()
            .map(|&addr| PatchRequest {
                addr,
                template: Template::Empty,
            })
            .collect()
    }

    #[test]
    fn horizon_dominates_every_tactic_extent() {
        let h = dependency_horizon();
        for (name, extent) in tactic_extents() {
            assert!(extent < h, "{name}: extent {extent} >= horizon {h}");
        }
    }

    #[test]
    fn horizon_value_matches_derivation() {
        // 15 (max insn len) + 127 (forward rel8) + 5 (jmp rel32).
        assert_eq!(dependency_horizon(), 147);
    }

    #[test]
    fn shards_cut_at_horizon_gaps() {
        let h = dependency_horizon();
        let base = 0x401000u64;
        // Three clusters: [base, base+10], [base+h+10], [base+3h].
        let shards = shard_requests(&reqs(&[
            base,
            base + 10,
            base + 10 + h, // exactly h above the previous: must split
            base + 3 * h,
        ]))
        .unwrap();
        assert_eq!(shards.len(), 3);
        // Descending shard order, descending within each shard.
        assert_eq!(shards[0][0].addr, base + 3 * h);
        assert_eq!(shards[1][0].addr, base + 10 + h);
        assert_eq!(shards[2][0].addr, base + 10);
        assert_eq!(shards[2][1].addr, base);
    }

    #[test]
    fn gap_one_below_horizon_stays_joined() {
        let h = dependency_horizon();
        let shards = shard_requests(&reqs(&[0x401000, 0x401000 + h - 1])).unwrap();
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].len(), 2);
    }

    #[test]
    fn shard_detects_duplicates() {
        let err = shard_requests(&reqs(&[0x401000, 0x401000])).unwrap_err();
        assert_eq!(err, Error::DuplicatePatch(0x401000));
    }

    #[test]
    fn chained_sites_within_horizon_share_a_shard() {
        // Pairwise gaps below h chain transitively even when the shard
        // ends up wider than h overall.
        let h = dependency_horizon();
        let addrs: Vec<u64> = (0..10).map(|i| 0x401000 + i * (h - 1)).collect();
        let shards = shard_requests(&reqs(&addrs)).unwrap();
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].len(), 10);
    }

    #[test]
    fn run_pool_returns_results_in_task_order() {
        for workers in [1, 4, 8] {
            let tasks: Vec<_> = (0..20i32).map(|i| move || i * 2).collect();
            assert_eq!(
                run_pool(workers, tasks).unwrap(),
                (0..40).step_by(2).collect::<Vec<i32>>()
            );
        }
    }

    #[test]
    fn run_pool_catches_panics_as_typed_errors() {
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("shard exploded")),
            Box::new(|| 3),
        ];
        let err = run_pool(4, tasks).unwrap_err();
        match err {
            Error::Internal(msg) => assert!(msg.contains("shard exploded"), "{msg}"),
            other => panic!("expected Internal, got {other:?}"),
        }
    }

    #[test]
    fn run_pool_empty_tasks() {
        let tasks: Vec<fn() -> u8> = Vec::new();
        assert_eq!(run_pool(4, tasks).unwrap(), Vec::<u8>::new());
    }
}
