//! Patching statistics — the columns of the paper's Table 1.

use std::fmt;

/// Which methodology ultimately patched a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TacticKind {
    /// `int3` + trap handler fallback (§2.1.1) — not counted as Succ%.
    B0,
    /// Plain 5-byte jump, instruction length ≥ 5 (§2.1.2).
    B1,
    /// Baseline instruction punning, zero padding (§2.1.3).
    B2,
    /// Padded punned jump (§3.1).
    T1,
    /// Successor eviction then re-pun (§3.2).
    T2,
    /// Neighbour eviction with double jump (§3.3).
    T3,
}

impl fmt::Display for TacticKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Aggregate patch outcome counts for one rewriting run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatchStats {
    /// Sites patched by B1 (plain jump).
    pub b1: usize,
    /// Sites patched by B2 (baseline pun).
    pub b2: usize,
    /// Sites patched by T1 (padded pun).
    pub t1: usize,
    /// Sites patched by T2 (successor eviction).
    pub t2: usize,
    /// Sites patched by T3 (neighbour eviction).
    pub t3: usize,
    /// Sites handled by the B0 trap fallback (only when enabled).
    pub b0: usize,
    /// Sites no tactic could patch.
    pub failed: usize,
}

impl PatchStats {
    /// Record one outcome.
    pub fn record(&mut self, kind: TacticKind) {
        match kind {
            TacticKind::B0 => self.b0 += 1,
            TacticKind::B1 => self.b1 += 1,
            TacticKind::B2 => self.b2 += 1,
            TacticKind::T1 => self.t1 += 1,
            TacticKind::T2 => self.t2 += 1,
            TacticKind::T3 => self.t3 += 1,
        }
    }

    /// Record a site that could not be patched.
    pub fn record_failure(&mut self) {
        self.failed += 1;
    }

    /// Fold another run's counters into this one (used by the parallel
    /// pipeline to recompute the Table-1 row from per-shard stats).
    pub fn merge(&mut self, other: &PatchStats) {
        self.b1 += other.b1;
        self.b2 += other.b2;
        self.t1 += other.t1;
        self.t2 += other.t2;
        self.t3 += other.t3;
        self.b0 += other.b0;
        self.failed += other.failed;
    }

    /// Total number of patch locations (#Loc).
    pub fn total(&self) -> usize {
        self.b1 + self.b2 + self.t1 + self.t2 + self.t3 + self.b0 + self.failed
    }

    /// Sites patched by any of B1/B2/T1/T2/T3.
    pub fn succeeded(&self) -> usize {
        self.b1 + self.b2 + self.t1 + self.t2 + self.t3
    }

    fn pct(&self, n: usize) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            100.0 * n as f64 / self.total() as f64
        }
    }

    /// Base% — the paper groups B1+B2 as the baseline coverage.
    pub fn base_pct(&self) -> f64 {
        self.pct(self.b1 + self.b2)
    }

    /// T1%.
    pub fn t1_pct(&self) -> f64 {
        self.pct(self.t1)
    }

    /// T2%.
    pub fn t2_pct(&self) -> f64 {
        self.pct(self.t2)
    }

    /// T3%.
    pub fn t3_pct(&self) -> f64 {
        self.pct(self.t3)
    }

    /// Succ% — overall coverage.
    pub fn succ_pct(&self) -> f64 {
        self.pct(self.succeeded())
    }

    /// Render as a Table-1-style row fragment:
    /// `#Loc Base% T1% T2% T3% Succ%`.
    pub fn table_row(&self) -> String {
        format!(
            "{:>8} {:>7.2} {:>6.2} {:>6.2} {:>6.2} {:>7.2}",
            self.total(),
            self.base_pct(),
            self.t1_pct(),
            self.t2_pct(),
            self.t3_pct(),
            self.succ_pct()
        )
    }
}

/// File-size and memory statistics for a rewriting run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SizeStats {
    /// Input binary file size.
    pub input_bytes: u64,
    /// Output binary file size.
    pub output_bytes: u64,
    /// Number of virtual blocks that contain trampoline bytes.
    pub virtual_blocks: u64,
    /// Number of merged physical blocks emitted to the file.
    pub physical_blocks: u64,
    /// Number of `mmap` mappings the loader must create.
    pub mappings: u64,
    /// Block granularity in pages (the paper's `M`).
    pub granularity: u64,
}

impl SizeStats {
    /// Size% — output size as a percentage of the input size (Table 1
    /// reports e.g. 157.43 meaning +57.43%).
    pub fn size_pct(&self) -> f64 {
        if self.input_bytes == 0 {
            0.0
        } else {
            100.0 * self.output_bytes as f64 / self.input_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentages() {
        let mut s = PatchStats::default();
        for _ in 0..70 {
            s.record(TacticKind::B2);
        }
        for _ in 0..10 {
            s.record(TacticKind::B1);
        }
        for _ in 0..14 {
            s.record(TacticKind::T1);
        }
        for _ in 0..3 {
            s.record(TacticKind::T2);
        }
        for _ in 0..2 {
            s.record(TacticKind::T3);
        }
        s.record_failure();
        assert_eq!(s.total(), 100);
        assert!((s.base_pct() - 80.0).abs() < 1e-9);
        assert!((s.t1_pct() - 14.0).abs() < 1e-9);
        assert!((s.succ_pct() - 99.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = PatchStats::default();
        assert_eq!(s.total(), 0);
        assert_eq!(s.succ_pct(), 0.0);
    }

    #[test]
    fn b0_not_counted_as_success() {
        let mut s = PatchStats::default();
        s.record(TacticKind::B0);
        assert_eq!(s.total(), 1);
        assert_eq!(s.succeeded(), 0);
        assert_eq!(s.succ_pct(), 0.0);
    }

    #[test]
    fn size_pct() {
        let s = SizeStats {
            input_bytes: 1000,
            output_bytes: 1574,
            ..SizeStats::default()
        };
        assert!((s.size_pct() - 157.4).abs() < 1e-9);
    }

    #[test]
    fn table_row_format() {
        let mut s = PatchStats::default();
        s.record(TacticKind::B2);
        let row = s.table_row();
        assert!(row.contains("100.00"));
    }
}
