//! Trampoline templates and instantiation (§2, §5).
//!
//! Every successful patch diverts control flow to a trampoline that
//!
//! 1. performs the instrumentation payload (nothing, a counter bump, or a
//!    call into a runtime check function),
//! 2. executes (a relocated copy of) the displaced instruction, and
//! 3. jumps back to the instruction after the patch site.
//!
//! Evicted instructions (tactics T2/T3) get an *evictee trampoline*, which
//! is simply the [`Template::Empty`] form: displaced instruction + jump
//! back.
//!
//! Payloads are transparent: caller-visible registers and RFLAGS are
//! saved/restored, and the stack pointer is first dropped past the 128-byte
//! System-V red zone so in-flight leaf-function data is not clobbered.

use e9x86::asm::{Asm, Mem};
use e9x86::insn::{Insn, Kind};
use e9x86::reg::Reg;
use e9x86::reloc::{self, RelocError};
use std::fmt;

/// What a trampoline does before resuming the displaced instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Template {
    /// No payload: execute the displaced instruction and return. The
    /// paper's "empty instrumentation" baseline (§6.1).
    Empty,
    /// Increment a 64-bit counter in memory (flag- and register-
    /// transparent). A realistic analogue of basic-block counting.
    Counter {
        /// Absolute address of the counter cell.
        counter_addr: u64,
    },
    /// Pass the effective address of the displaced instruction's memory
    /// operand to a check function (`fn(ptr in %rdi)`), then execute the
    /// displaced instruction — the heap-write hardening application (§6.3).
    CheckCall {
        /// Absolute address of the check function.
        func_addr: u64,
    },
    /// Call an instrumentation hook (`fn(site_addr in %rdi)`) before the
    /// displaced instruction — the general event-hook form used by
    /// tracing/fuzzing-style applications built on E9Patch.
    HookCall {
        /// Absolute address of the hook function.
        func_addr: u64,
    },
    /// Full register-save hook: spill every caller-visible GPR (all
    /// sixteen except `%rsp`, which is dropped past the red zone) plus
    /// RFLAGS, call `fn(site_addr in %rdi)`, restore everything, then
    /// execute the displaced instruction and resume. The foundation of the
    /// e9hook function-hooking subsystem: unlike [`Template::HookCall`],
    /// the payload may be arbitrary SysV code that clobbers any
    /// caller-saved register.
    HookSave {
        /// Absolute address of the hook payload function.
        func_addr: u64,
    },
    /// Call-original hook: as [`Template::HookSave`], but the payload is
    /// `fn(site_addr in %rdi, thunk_addr in %rsi)` where `thunk_addr` is an
    /// executable thunk holding the *relocated* displaced prologue
    /// instruction followed by a jump to the second instruction of the
    /// hooked function — calling it re-enters the original function. After
    /// the payload returns and registers are restored, the trampoline
    /// continues through that same thunk (diverting; no inline displaced
    /// copy), so the relocated prologue is exercised on every call.
    HookOriginal {
        /// Absolute address of the hook payload function.
        func_addr: u64,
        /// Absolute address of the call-original thunk.
        thunk_addr: u64,
    },
    /// Execute `code` *instead of* the displaced instruction, then jump to
    /// `resume` (defaulting to the next instruction) — binary patching
    /// (Example 3.1 / Figure 2).
    Replace {
        /// Raw replacement machine code (position-independent or assembled
        /// for its final address by the caller).
        code: Vec<u8>,
        /// Where to continue execution; `None` = after the patched
        /// instruction.
        resume: Option<u64>,
    },
}

/// Trampoline instantiation failure. `OutOfReach` is retryable with a
/// different trampoline address; the others are properties of the patch
/// site itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildError {
    /// A rel32 (displaced branch or resume jump) cannot span from the
    /// trampoline to the original code.
    OutOfReach,
    /// The displaced instruction cannot be relocated (`loop`/`jrcxz`).
    Unrelocatable,
    /// `CheckCall` requires a ModRM memory operand to take the address of.
    NoMemOperand,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::OutOfReach => write!(f, "trampoline out of rel32 reach of original code"),
            BuildError::Unrelocatable => write!(f, "displaced instruction cannot be relocated"),
            BuildError::NoMemOperand => {
                write!(f, "check-call template requires a memory operand")
            }
        }
    }
}

impl std::error::Error for BuildError {}

const RED_ZONE: i32 = 128;

/// GPRs spilled by the [`Template::HookSave`] / [`Template::HookOriginal`]
/// prologue, in push order (`%rsp` is excluded: it is handled by the
/// red-zone adjustment and must stay live for the pushes themselves).
const SAVED_REGS: [Reg; 15] = [
    Reg::Rax,
    Reg::Rcx,
    Reg::Rdx,
    Reg::Rbx,
    Reg::Rbp,
    Reg::Rsi,
    Reg::Rdi,
    Reg::R8,
    Reg::R9,
    Reg::R10,
    Reg::R11,
    Reg::R12,
    Reg::R13,
    Reg::R14,
    Reg::R15,
];

/// Conservative upper bound on the built trampoline size in bytes, used to
/// reserve address space before the final address is known.
pub fn max_size(template: &Template, insn: &Insn) -> usize {
    let displaced = reloc::relocated_size_upper_bound(insn);
    let resume = 5;
    match template {
        Template::Empty => displaced + resume,
        // lea(5) + push(1) + pushfq(1) + movabs(10) + inc(3) + popfq(1)
        // + pop(1) + lea-restore(8, disp32 form for +128).
        Template::Counter { .. } => 32 + displaced + resume,
        // lea(5) + 2×push(2) + pushfq(1) + lea-mem(≤9) + movabs(10)
        // + call *rax(2) + popfq(1) + 2×pop(2) + lea-restore(8).
        Template::CheckCall { .. } => 44 + displaced + resume,
        // As CheckCall, with a movabs(10) site-address load instead of the
        // lea.
        Template::HookCall { .. } => 45 + displaced + resume,
        // lea(5) + 15 pushes (7 + 2×8 = 23) + pushfq(1) + movabs-site(10)
        // + movabs-func(10) + call *rax(2) + popfq(1) + 15 pops(23)
        // + lea-restore(8, disp32 form for +128).
        Template::HookSave { .. } => 83 + displaced + resume,
        // As HookSave plus a movabs(10) thunk-address load; the tail is a
        // single jmp(5) to the thunk instead of displaced + resume.
        Template::HookOriginal { .. } => 98,
        Template::Replace { code, .. } => code.len() + resume,
    }
}

/// Full-state save: red-zone skip, every GPR but `%rsp`, RFLAGS.
fn save_all(a: &mut Asm) {
    a.lea(Reg::Rsp, Mem::base_disp(Reg::Rsp, -RED_ZONE));
    for r in SAVED_REGS {
        a.push_r(r);
    }
    a.pushfq();
}

/// Exact inverse of [`save_all`].
fn restore_all(a: &mut Asm) {
    a.popfq();
    for r in SAVED_REGS.iter().rev() {
        a.pop_r(*r);
    }
    a.lea(Reg::Rsp, Mem::base_disp(Reg::Rsp, RED_ZONE));
}

/// Does the displaced instruction unconditionally leave the trampoline
/// (making the resume jump dead)?
fn diverts(kind: Kind) -> bool {
    matches!(kind, Kind::Ret | Kind::JmpRel8 | Kind::JmpRel32 | Kind::JmpInd)
}

/// Instantiate `template` for patched instruction `insn` at trampoline
/// address `tramp_addr`.
///
/// # Errors
///
/// [`BuildError::OutOfReach`] when the chosen address cannot reach the
/// original code with rel32 displacements (the caller retries elsewhere);
/// [`BuildError::Unrelocatable`] / [`BuildError::NoMemOperand`] when the
/// patch site is fundamentally unsuited to the template.
pub fn build(template: &Template, insn: &Insn, tramp_addr: u64) -> Result<Vec<u8>, BuildError> {
    let mut a = Asm::new(tramp_addr);

    match template {
        Template::Empty => {}
        Template::Counter { counter_addr } => {
            a.lea(Reg::Rsp, Mem::base_disp(Reg::Rsp, -RED_ZONE));
            a.push_r(Reg::Rax);
            a.pushfq();
            a.mov_ri64(Reg::Rax, *counter_addr as i64);
            a.inc_m(e9x86::reg::Width::Q, Mem::base(Reg::Rax));
            a.popfq();
            a.pop_r(Reg::Rax);
            a.lea(Reg::Rsp, Mem::base_disp(Reg::Rsp, RED_ZONE));
        }
        Template::CheckCall { func_addr } => {
            let m = insn
                .modrm
                .and_then(|m| m.mem)
                .ok_or(BuildError::NoMemOperand)?;
            if m.rip_relative || m.base == Some(Reg::Rsp) {
                // A2 excludes these; an rsp base would also be invalidated
                // by the saves below.
                return Err(BuildError::NoMemOperand);
            }
            a.lea(Reg::Rsp, Mem::base_disp(Reg::Rsp, -RED_ZONE));
            a.push_r(Reg::Rdi);
            a.push_r(Reg::Rax);
            a.pushfq();
            a.lea(
                Reg::Rdi,
                Mem {
                    base: m.base,
                    index: m.index,
                    disp: m.disp,
                    rip_label: None,
                },
            );
            a.mov_ri64(Reg::Rax, *func_addr as i64);
            a.call_ind_r(Reg::Rax);
            a.popfq();
            a.pop_r(Reg::Rax);
            a.pop_r(Reg::Rdi);
            a.lea(Reg::Rsp, Mem::base_disp(Reg::Rsp, RED_ZONE));
        }
        Template::HookCall { func_addr } => {
            a.lea(Reg::Rsp, Mem::base_disp(Reg::Rsp, -RED_ZONE));
            a.push_r(Reg::Rdi);
            a.push_r(Reg::Rax);
            a.pushfq();
            a.mov_ri64(Reg::Rdi, insn.addr as i64);
            a.mov_ri64(Reg::Rax, *func_addr as i64);
            a.call_ind_r(Reg::Rax);
            a.popfq();
            a.pop_r(Reg::Rax);
            a.pop_r(Reg::Rdi);
            a.lea(Reg::Rsp, Mem::base_disp(Reg::Rsp, RED_ZONE));
        }
        Template::HookSave { func_addr } => {
            save_all(&mut a);
            a.mov_ri64(Reg::Rdi, insn.addr as i64);
            a.mov_ri64(Reg::Rax, *func_addr as i64);
            a.call_ind_r(Reg::Rax);
            restore_all(&mut a);
        }
        Template::HookOriginal {
            func_addr,
            thunk_addr,
        } => {
            save_all(&mut a);
            a.mov_ri64(Reg::Rdi, insn.addr as i64);
            a.mov_ri64(Reg::Rsi, *thunk_addr as i64);
            a.mov_ri64(Reg::Rax, *func_addr as i64);
            a.call_ind_r(Reg::Rax);
            restore_all(&mut a);
            // Continue the original function through its thunk: relocated
            // prologue + jump to the second instruction live there.
            a.jmp_abs(*thunk_addr).map_err(|_| BuildError::OutOfReach)?;
            return a.finish().map_err(|_| BuildError::OutOfReach);
        }
        Template::Replace { code, resume } => {
            a.raw(code);
            let resume = resume.unwrap_or_else(|| insn.end());
            a.jmp_abs(resume).map_err(|_| BuildError::OutOfReach)?;
            return a.finish().map_err(|_| BuildError::OutOfReach);
        }
    }

    // Displaced original instruction, relocated for its new home.
    let displaced = reloc::relocate(insn, a.here()).map_err(|e| match e {
        RelocError::UnsupportedLoop => BuildError::Unrelocatable,
        RelocError::DispOutOfRange { .. } => BuildError::OutOfReach,
    })?;
    a.raw(&displaced);

    if !diverts(insn.kind) {
        a.jmp_abs(insn.end()).map_err(|_| BuildError::OutOfReach)?;
    }
    a.finish().map_err(|_| BuildError::OutOfReach)
}

/// Build an evictee trampoline for victim `insn` (T2/T3): execute the
/// displaced victim, then jump back to the instruction after it.
pub fn build_evictee(insn: &Insn, tramp_addr: u64) -> Result<Vec<u8>, BuildError> {
    build(&Template::Empty, insn, tramp_addr)
}

/// Upper bound for an evictee trampoline.
pub fn evictee_max_size(insn: &Insn) -> usize {
    max_size(&Template::Empty, insn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use e9x86::decode::decode;

    fn mov_insn() -> Insn {
        decode(&[0x48, 0x89, 0x03], 0x401000).unwrap() // mov %rax,(%rbx)
    }

    #[test]
    fn empty_template_shape() {
        let insn = mov_insn();
        let t = build(&Template::Empty, &insn, 0x70000000).unwrap();
        // displaced mov (3 bytes) + jmp back (5 bytes).
        assert_eq!(t.len(), 8);
        assert_eq!(&t[..3], insn.bytes());
        let back = decode(&t[3..], 0x70000003).unwrap();
        assert_eq!(back.branch_target(), Some(0x401003));
        assert!(t.len() <= max_size(&Template::Empty, &insn));
    }

    #[test]
    fn displaced_jcc_keeps_both_edges() {
        // je +0x27 at 0x422ad5 (Figure 2) — in the trampoline the taken
        // edge must still reach 0x422afe and the fallthrough must resume at
        // 0x422ad7.
        let insn = decode(&[0x74, 0x27], 0x422ad5).unwrap();
        let addr = 0x42f00000;
        let t = build(&Template::Empty, &insn, addr).unwrap();
        let jcc = decode(&t, addr).unwrap();
        assert_eq!(jcc.branch_target(), Some(0x422afe));
        let resume = decode(&t[jcc.len()..], addr + jcc.len() as u64).unwrap();
        assert_eq!(resume.branch_target(), Some(0x422ad7));
    }

    #[test]
    fn displaced_unconditional_jmp_has_no_resume() {
        let insn = decode(&[0xEB, 0x10], 0x401000).unwrap();
        let t = build(&Template::Empty, &insn, 0x70000000).unwrap();
        assert_eq!(t.len(), 5); // just the widened jmp
        let j = decode(&t, 0x70000000).unwrap();
        assert_eq!(j.branch_target(), Some(0x401012));
    }

    #[test]
    fn displaced_ret_has_no_resume() {
        let insn = decode(&[0xC3], 0x401000).unwrap();
        let t = build(&Template::Empty, &insn, 0x70000000).unwrap();
        assert_eq!(t, vec![0xC3]);
    }

    #[test]
    fn counter_template_is_flag_transparent() {
        let insn = mov_insn();
        let t = build(
            &Template::Counter {
                counter_addr: 0x60000000,
            },
            &insn,
            0x70000000,
        )
        .unwrap();
        assert!(t.len() <= max_size(&Template::Counter { counter_addr: 0 }, &insn));
        // pushfq must appear before the inc and popfq after.
        let pushf = t.iter().position(|&b| b == 0x9C).unwrap();
        let popf = t.iter().position(|&b| b == 0x9D).unwrap();
        assert!(pushf < popf);
        // Ends with the displaced insn + jmp back.
        assert_eq!(&t[t.len() - 8..t.len() - 5], insn.bytes());
    }

    #[test]
    fn check_call_loads_effective_address() {
        // mov %rax,0x10(%rbx,%rcx,4) — the lea must reproduce the operand.
        let insn = decode(&[0x48, 0x89, 0x44, 0x8B, 0x10], 0x401000).unwrap();
        let t = build(&Template::CheckCall { func_addr: 0x50000000 }, &insn, 0x70000000).unwrap();
        assert!(t.len() <= max_size(&Template::CheckCall { func_addr: 0 }, &insn));
        // Somewhere inside: lea 0x10(%rbx,%rcx,4),%rdi = 48 8d 7c 8b 10.
        let needle = [0x48, 0x8D, 0x7C, 0x8B, 0x10];
        assert!(
            t.windows(needle.len()).any(|w| w == needle),
            "lea of the operand missing: {t:02x?}"
        );
    }

    #[test]
    fn check_call_rejects_register_and_rip_forms() {
        let reg_only = decode(&[0x48, 0x01, 0xC3], 0x401000).unwrap(); // add %rax,%rbx
        assert_eq!(
            build(&Template::CheckCall { func_addr: 0 }, &reg_only, 0x70000000),
            Err(BuildError::NoMemOperand)
        );
        let ripw = decode(&[0x48, 0x89, 0x05, 0, 0, 0x20, 0], 0x401000).unwrap();
        assert_eq!(
            build(&Template::CheckCall { func_addr: 0 }, &ripw, 0x70000000),
            Err(BuildError::NoMemOperand)
        );
    }

    #[test]
    fn hook_call_passes_site_address() {
        let insn = mov_insn();
        let t = build(&Template::HookCall { func_addr: 0x50000000 }, &insn, 0x70000000).unwrap();
        assert!(t.len() <= max_size(&Template::HookCall { func_addr: 0 }, &insn));
        // movabs $0x401000,%rdi = 48 bf 00 10 40 00 00 00 00 00.
        let needle = [0x48, 0xBF, 0x00, 0x10, 0x40, 0x00, 0x00, 0x00, 0x00, 0x00];
        assert!(
            t.windows(needle.len()).any(|w| w == needle),
            "site address load missing: {t:02x?}"
        );
        // Register-only patch sites are fine for hooks (unlike CheckCall).
        let reg_only = e9x86::decode(&[0x48, 0x01, 0xC3], 0x401000).unwrap();
        assert!(build(&Template::HookCall { func_addr: 0x50000000 }, &reg_only, 0x70000000).is_ok());
    }

    #[test]
    fn hook_save_spills_and_restores_every_gpr() {
        let insn = mov_insn();
        let t = build(&Template::HookSave { func_addr: 0x46000000 }, &insn, 0x70000000).unwrap();
        assert!(t.len() <= max_size(&Template::HookSave { func_addr: 0 }, &insn));
        // 15 pushes then pushfq on the way in; popfq then 15 pops out.
        let pushes = t.iter().filter(|&&b| (0x50..0x58).contains(&b)).count();
        let pops = t.iter().filter(|&&b| (0x58..0x60).contains(&b)).count();
        assert_eq!(pushes, 15, "push count: {t:02x?}");
        assert_eq!(pops, 15, "pop count: {t:02x?}");
        let pushf = t.iter().position(|&b| b == 0x9C).unwrap();
        let popf = t.iter().position(|&b| b == 0x9D).unwrap();
        assert!(pushf < popf);
        // Site address in %rdi: movabs $0x401000,%rdi.
        let needle = [0x48, 0xBF, 0x00, 0x10, 0x40, 0x00, 0x00, 0x00, 0x00, 0x00];
        assert!(t.windows(needle.len()).any(|w| w == needle));
        // Ends with the displaced insn + jmp back.
        assert_eq!(&t[t.len() - 8..t.len() - 5], insn.bytes());
        let back = decode(&t[t.len() - 5..], 0x70000000 + t.len() as u64 - 5).unwrap();
        assert_eq!(back.branch_target(), Some(insn.end()));
    }

    #[test]
    fn hook_save_restore_order_is_lifo() {
        let insn = mov_insn();
        let t = build(&Template::HookSave { func_addr: 0x46000000 }, &insn, 0x70000000).unwrap();
        // First push is rax (0x50), last pop is rax (0x58): exact inverse.
        let first_push = t.iter().find(|&&b| (0x50..0x58).contains(&b)).unwrap();
        let last_pop = t.iter().rfind(|&&b| (0x58..0x60).contains(&b)).unwrap();
        assert_eq!(*first_push, 0x50);
        assert_eq!(*last_pop, 0x58);
    }

    #[test]
    fn hook_original_diverts_to_thunk() {
        let insn = mov_insn();
        let thunk = 0x7100_0000u64;
        let t = build(
            &Template::HookOriginal { func_addr: 0x50000000, thunk_addr: thunk },
            &insn,
            0x70000000,
        )
        .unwrap();
        assert!(t.len() <= max_size(
            &Template::HookOriginal { func_addr: 0, thunk_addr: 0 },
            &insn
        ));
        // Thunk address in %rsi: movabs $thunk,%rsi.
        let mut needle = vec![0x48, 0xBE];
        needle.extend_from_slice(&thunk.to_le_bytes());
        assert!(t.windows(needle.len()).any(|w| w == needle), "{t:02x?}");
        // No inline displaced copy; tail is a jmp to the thunk.
        let j = decode(&t[t.len() - 5..], 0x70000000 + t.len() as u64 - 5).unwrap();
        assert_eq!(j.branch_target(), Some(thunk));
        assert!(!t.windows(3).any(|w| w == insn.bytes()));
    }

    #[test]
    fn hook_templates_preserve_stack_alignment() {
        // 15 pushes + pushfq = 16 slots = 128 bytes: together with the
        // red-zone lea the payload sees rsp ≡ site rsp (mod 16).
        let insn = mov_insn();
        for tpl in [
            Template::HookSave { func_addr: 0x46000000 },
            Template::HookOriginal { func_addr: 0x46000000, thunk_addr: 0x71000000 },
        ] {
            let t = build(&tpl, &insn, 0x70000000).unwrap();
            let pushes = t.iter().filter(|&&b| (0x50..0x58).contains(&b)).count();
            assert_eq!((pushes + 1) * 8 % 16, 0);
        }
    }

    #[test]
    fn hook_original_out_of_reach_thunk_rejected() {
        let insn = mov_insn();
        assert_eq!(
            build(
                &Template::HookOriginal {
                    func_addr: 0x50000000,
                    thunk_addr: 0x7FFF_0000_0000,
                },
                &insn,
                0x70000000,
            ),
            Err(BuildError::OutOfReach)
        );
    }

    #[test]
    fn replace_template_resumes_elsewhere() {
        let insn = mov_insn();
        let t = build(
            &Template::Replace {
                code: vec![0x90, 0x90],
                resume: Some(0x401100),
            },
            &insn,
            0x70000000,
        )
        .unwrap();
        assert_eq!(&t[..2], &[0x90, 0x90]);
        let j = decode(&t[2..], 0x70000002).unwrap();
        assert_eq!(j.branch_target(), Some(0x401100));
    }

    #[test]
    fn out_of_reach_detected() {
        let insn = mov_insn();
        assert_eq!(
            build(&Template::Empty, &insn, 0x7FFF_0000_0000),
            Err(BuildError::OutOfReach)
        );
    }

    #[test]
    fn loop_unpatchable() {
        let insn = decode(&[0xE2, 0xFE], 0x401000).unwrap();
        assert_eq!(
            build(&Template::Empty, &insn, 0x70000000),
            Err(BuildError::Unrelocatable)
        );
    }

    #[test]
    fn evictee_equals_empty() {
        let insn = mov_insn();
        assert_eq!(
            build_evictee(&insn, 0x70000000).unwrap(),
            build(&Template::Empty, &insn, 0x70000000).unwrap()
        );
    }
}
