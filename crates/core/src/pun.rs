//! Punned-jump geometry (§2.1.3, §3.1).
//!
//! A (possibly padded) `jmpq rel32` written at `jump_addr` with `padding`
//! redundant prefix bytes has its opcode at `jump_addr + padding` and its
//! `rel32` at `jump_addr + padding + 1 ..+5`. If the rewriter owns only
//! `writable` bytes at the jump site, then `rel32` byte `i` is **free**
//! (choosable) iff `padding + 1 + i < writable`, and **fixed** otherwise —
//! fixed bytes keep the current values of the overlapping successor
//! instructions, which constrains the jump target to a window of `256^f`
//! addresses.
//!
//! Worked example — the paper's Figure 1, patching the 3-byte
//! `mov %rax,(%rbx)` followed by `add $32,%rax` (`48 83 c0 20`):
//!
//! | tactic | padding | free | rel32 window |
//! |--------|---------|------|--------------|
//! | B2     | 0       | 2    | `0x8348_0000 ..= 0x8348_FFFF` |
//! | T1(a)  | 1       | 1    | `0xC083_4800 ..= 0xC083_48FF` |
//! | T1(b)  | 2       | 0    | exactly `0x20C0_8348` |

use crate::layout::Window;
use e9x86::prefix::{REDUNDANT_JMP_PREFIXES, REX_W};
use e9x86::JMP_REL32_OPCODE;

/// A candidate punned jump: where it sits, how it is padded, and which
/// `rel32` bytes are free versus fixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PunJump {
    /// Address of the first byte of the (padded) jump.
    pub jump_addr: u64,
    /// Number of redundant prefix bytes before the `E9` opcode.
    pub padding: u8,
    /// Number of free low-order `rel32` bytes (0..=4).
    pub free: u8,
    /// Values of the fixed high-order `rel32` bytes; `fixed[i]` is `rel32`
    /// byte `free + i`. Only the first `4 - free` entries are meaningful.
    pub fixed: [u8; 4],
}

impl PunJump {
    /// Build the candidate with `padding` prefix bytes for a site where the
    /// rewriter owns `writable` bytes starting at `jump_addr`, given the
    /// current byte image starting at that address.
    ///
    /// `image` must expose at least `padding + 5` bytes (the full extent of
    /// the padded jump); otherwise the successor bytes needed for the pun do
    /// not exist (end of segment) and `None` is returned. `None` is also
    /// returned if `padding >= writable` (padding may never spill into bytes
    /// the rewriter does not own).
    pub fn new(image: &[u8], jump_addr: u64, writable: u8, padding: u8) -> Option<PunJump> {
        if padding >= writable {
            return None;
        }
        let total = padding as usize + 5;
        if image.len() < total {
            return None;
        }
        let free = (writable as i32 - padding as i32 - 1).clamp(0, 4) as u8;
        let mut fixed = [0u8; 4];
        for i in free..4 {
            fixed[(i - free) as usize] = image[padding as usize + 1 + i as usize];
        }
        Some(PunJump {
            jump_addr,
            padding,
            free,
            fixed,
        })
    }

    /// Total length of the padded jump instruction.
    #[inline]
    pub fn jump_len(&self) -> u8 {
        self.padding + 5
    }

    /// Address the `rel32` displacement is taken relative to (end of the
    /// jump instruction).
    #[inline]
    pub fn site_end(&self) -> u64 {
        self.jump_addr + self.jump_len() as u64
    }

    /// The `rel32` value with all free bytes zero, sign-extended.
    pub fn rel_base(&self) -> i32 {
        let mut b = [0u8; 4];
        for i in self.free..4 {
            b[i as usize] = self.fixed[(i - self.free) as usize];
        }
        i32::from_le_bytes(b)
    }

    /// The window of reachable target addresses, clamped to usable
    /// userspace. `None` when every candidate target is invalid (e.g. the
    /// whole window underflows below zero — the non-PIE negative-offset
    /// failure from §2.1.3).
    pub fn target_window(&self) -> Option<Window> {
        // With all four rel32 bytes free the displacement spans the whole
        // signed range; otherwise the fixed high bytes pin the sign and the
        // free low bytes form a contiguous run above `rel_base`.
        let (rel_lo, span): (i128, i128) = if self.free >= 4 {
            (i32::MIN as i128, 1i128 << 32)
        } else {
            (self.rel_base() as i128, 1i128 << (8 * self.free as u32))
        };
        let lo = self.site_end() as i128 + rel_lo;
        Window::from_i128(lo, lo + span)
    }

    /// Encode the jump for a concrete `target`, returning the bytes that
    /// must be **written** at `jump_addr` (prefix padding, the `E9` opcode,
    /// and the free `rel32` bytes). The remaining `4 - free` bytes of the
    /// `rel32` are the untouched successor bytes and are *not* returned —
    /// they must instead be locked as punned by the caller (see
    /// [`PunJump::punned_range`]).
    ///
    /// Returns `None` if `target` is not inside this pun's window.
    pub fn encode(&self, target: u64) -> Option<Vec<u8>> {
        let rel = (target as i128) - (self.site_end() as i128);
        let rel32 = i32::try_from(rel).ok()?;
        let bytes = rel32.to_le_bytes();
        // The fixed tail must match exactly.
        for i in self.free..4 {
            if bytes[i as usize] != self.fixed[(i - self.free) as usize] {
                return None;
            }
        }
        let mut out = Vec::with_capacity(self.padding as usize + 1 + self.free as usize);
        out.extend_from_slice(&padding_bytes(self.padding));
        out.push(JMP_REL32_OPCODE);
        out.extend_from_slice(&bytes[..self.free as usize]);
        Some(out)
    }

    /// Address range `[start, end)` of the successor bytes whose values the
    /// encoded jump depends on (to be locked `Punned`). Empty when the jump
    /// fits entirely within the writable region (plain B1).
    pub fn punned_range(&self) -> (u64, u64) {
        let start = self.jump_addr + self.padding as u64 + 1 + self.free as u64;
        let end = self.jump_addr + self.jump_len() as u64;
        (start.min(end), end)
    }

    /// Address range `[start, end)` of the bytes [`PunJump::encode`] writes
    /// (to be locked `Modified`).
    pub fn written_range(&self) -> (u64, u64) {
        (
            self.jump_addr,
            self.jump_addr + self.padding as u64 + 1 + self.free as u64,
        )
    }
}

/// The redundant prefix bytes used for `padding` bytes of T1 padding: the
/// byte adjacent to the opcode is `REX.W` (as in the paper's Figure 1
/// T1(a)), preceded by segment-override prefixes.
pub fn padding_bytes(padding: u8) -> Vec<u8> {
    let mut v = Vec::with_capacity(padding as usize);
    for i in (1..padding).rev() {
        v.push(REDUNDANT_JMP_PREFIXES[(i - 1) as usize % REDUNDANT_JMP_PREFIXES.len()]);
    }
    if padding >= 1 {
        v.push(REX_W);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 1's byte image starting at the patch instruction:
    /// mov %rax,(%rbx); add $32,%rax; xor %rax,%rcx; cmpl $77,-4(%rbx).
    const FIG1: [u8; 14] = [
        0x48, 0x89, 0x03, 0x48, 0x83, 0xC0, 0x20, 0x48, 0x31, 0xC1, 0x83, 0x7B, 0xFC, 0x4D,
    ];

    #[test]
    fn b2_window_matches_paper() {
        let p = PunJump::new(&FIG1, 0x1000, 3, 0).unwrap();
        assert_eq!(p.free, 2);
        assert_eq!(p.rel_base() as u32, 0x8348_0000);
        // MSB set → negative rel32; from a low address the window clamps
        // away entirely (the paper's invalid case).
        assert!(p.target_window().is_none());
    }

    #[test]
    fn b2_window_valid_from_high_address() {
        // The same pun from a PIE-like high address has a valid window
        // (negative offsets land in usable space) — §6.1's PIE advantage.
        let p = PunJump::new(&FIG1, 0x5555_5555_4000, 3, 0).unwrap();
        let w = p.target_window().unwrap();
        assert_eq!(w.len(), 0x10000);
        let rel = p.rel_base() as i64;
        assert_eq!(w.lo as i64, 0x5555_5555_4005 + rel);
    }

    #[test]
    fn t1a_window_matches_paper() {
        let p = PunJump::new(&FIG1, 0x1000, 3, 1).unwrap();
        assert_eq!(p.free, 1);
        assert_eq!(p.rel_base() as u32, 0xC083_4800);
        assert!(p.target_window().is_none()); // negative again
    }

    #[test]
    fn t1b_window_matches_paper() {
        let p = PunJump::new(&FIG1, 0x1000, 3, 2).unwrap();
        assert_eq!(p.free, 0);
        assert_eq!(p.rel_base() as u32, 0x20C0_8348);
        let w = p.target_window().unwrap();
        assert_eq!(w.len(), 1); // exactly one valid location
        assert_eq!(w.lo, 0x1000 + 7 + 0x20C0_8348);
    }

    #[test]
    fn b1_full_freedom_for_long_instructions() {
        let image = [0x48, 0xB8, 1, 2, 3, 4, 5, 6, 7, 8, 0x90]; // 10-byte movabs
        let p = PunJump::new(&image, 0x400000, 10, 0).unwrap();
        assert_eq!(p.free, 4);
        let w = p.target_window().unwrap();
        // Clamped below by the null guard: site is low, so the negative
        // half of ±2 GiB is cut off.
        assert_eq!(w.lo, crate::layout::MIN_ADDR);
        let (ps, pe) = p.punned_range();
        assert_eq!(ps, pe); // no punned successor bytes
    }

    #[test]
    fn padding_never_exceeds_writable() {
        assert!(PunJump::new(&FIG1, 0x1000, 3, 3).is_none());
        assert!(PunJump::new(&FIG1, 0x1000, 1, 1).is_none());
    }

    #[test]
    fn truncated_image_rejected() {
        assert!(PunJump::new(&FIG1[..4], 0x1000, 3, 0).is_none());
    }

    #[test]
    fn encode_b2() {
        let p = PunJump::new(&FIG1, 0x5555_5555_4000, 3, 0).unwrap();
        let w = p.target_window().unwrap();
        let target = w.lo + 0x1234;
        let bytes = p.encode(target).unwrap();
        // e9 + 2 free bytes.
        assert_eq!(bytes.len(), 3);
        assert_eq!(bytes[0], 0xE9);
        assert_eq!(&bytes[1..], &[0x34, 0x12]);
        // Out-of-window targets refused.
        assert!(p.encode(w.lo + 0x10000).is_none());
        assert!(p.encode(w.lo.wrapping_sub(1)).is_none());
    }

    #[test]
    fn encode_t1b_single_target() {
        let p = PunJump::new(&FIG1, 0x1000, 3, 2).unwrap();
        let w = p.target_window().unwrap();
        let bytes = p.encode(w.lo).unwrap();
        // 2 prefixes + e9, zero free bytes.
        assert_eq!(bytes.len(), 3);
        assert_eq!(bytes[2], 0xE9);
        assert!(e9x86::prefix::is_redundant_jmp_prefix(bytes[0]));
        assert_eq!(bytes[1], 0x48);
    }

    #[test]
    fn encoded_jump_decodes_to_target() {
        // End-to-end: splice the encoded bytes into the image and decode.
        let addr = 0x5555_5555_4000u64;
        for padding in 0..3u8 {
            let p = PunJump::new(&FIG1, addr, 3, padding).unwrap();
            let Some(w) = p.target_window() else { continue };
            let target = w.lo + (w.len() / 2);
            let written = p.encode(target).unwrap();
            let mut image = FIG1.to_vec();
            image[..written.len()].copy_from_slice(&written);
            let insn = e9x86::decode(&image, addr).unwrap();
            assert_eq!(insn.kind, e9x86::Kind::JmpRel32);
            assert_eq!(insn.branch_target(), Some(target), "padding={padding}");
            assert_eq!(insn.len(), p.jump_len() as usize);
        }
    }

    #[test]
    fn ranges_partition_the_jump() {
        let p = PunJump::new(&FIG1, 0x1000, 3, 1).unwrap();
        let (ws, we) = p.written_range();
        let (ps, pe) = p.punned_range();
        assert_eq!(ws, 0x1000);
        assert_eq!(we, ps); // contiguous
        assert_eq!(pe, 0x1000 + p.jump_len() as u64);
    }

    #[test]
    fn padding_bytes_are_all_redundant() {
        for n in 0..6u8 {
            let v = padding_bytes(n);
            assert_eq!(v.len(), n as usize);
            for b in v {
                assert!(e9x86::prefix::is_redundant_jmp_prefix(b));
            }
        }
    }

    #[test]
    fn single_byte_instruction_has_no_t1() {
        // writable = 1: only padding 0 works, with zero free bytes.
        let image = [0xC3, 0x48, 0x83, 0xC0, 0x20, 0x90];
        let p = PunJump::new(&image, 0x1000, 1, 0).unwrap();
        assert_eq!(p.free, 0);
        assert!(PunJump::new(&image, 0x1000, 1, 1).is_none());
    }
}
