//! Parallel sharded planning: the determinism contract (byte-identical
//! output for every worker count), coverage parity with the sequential
//! planner, shard-fence safety, and the panic-path regressions fixed in
//! the same change.

use e9patch::layout::StripeMask;
use e9patch::planner::{PatchRequest, Planner, RewriteConfig};
use e9patch::shard::{self, dependency_horizon};
use e9patch::trampoline::Template;
use e9patch::{Error, Rewriter};
use e9synth::{generate, Preset, Profile};
use e9x86::decode::linear_sweep;
use e9x86::insn::Insn;
use std::collections::BTreeMap;

/// A synthetic corpus binary plus its A1 (jump sites) patch requests.
fn corpus(scale: u64) -> (e9synth::SynthBinary, Vec<PatchRequest>) {
    let profile = Profile::scaled(
        "parallel-test",
        false,
        Preset::Int,
        e9synth::PaperRow {
            size_mb: 1.0,
            a1_loc: 36821,
            a2_loc: 7522,
            a1_succ: 100.0,
            a2_succ: 100.0,
        },
        scale,
        0,
        2,
    );
    let prog = generate(&profile);
    let reqs: Vec<PatchRequest> = prog
        .disasm
        .iter()
        .filter(|i| i.kind.is_jump())
        .map(|i| PatchRequest {
            addr: i.addr,
            template: Template::Empty,
        })
        .collect();
    (prog, reqs)
}

#[test]
fn output_byte_identical_across_worker_counts() {
    let (prog, dense) = corpus(400);
    assert!(dense.len() > 32, "corpus too small: {}", dense.len());
    // Dense = one shard; sparse = many shards spread over all lanes.
    // Identity across worker counts must hold for both shapes.
    for reqs in [&dense, &sparse(&dense)] {
        let mut outputs = Vec::new();
        for jobs in [1usize, 2, 4, 8] {
            let cfg = RewriteConfig {
                jobs: Some(jobs),
                ..RewriteConfig::default()
            };
            let out = Rewriter::new(cfg)
                .rewrite(&prog.binary, &prog.disasm, reqs, &[])
                .expect("rewrite");
            outputs.push((jobs, out));
        }
        let (_, first) = &outputs[0];
        for (jobs, out) in &outputs[1..] {
            assert_eq!(out.binary, first.binary, "jobs={jobs} binary differs");
            assert_eq!(out.stats, first.stats, "jobs={jobs} stats differ");
            assert_eq!(out.reports, first.reports, "jobs={jobs} reports differ");
        }
    }
}

#[test]
fn parallel_coverage_matches_sequential() {
    // Trampoline *addresses* may differ between the sequential and the
    // striped parallel allocator, but the Table-1 row (which tactic
    // patched each site) must not.
    let (prog, dense) = corpus(400);
    for reqs in [&dense, &sparse(&dense)] {
        let seq = Rewriter::new(RewriteConfig::default())
            .rewrite(&prog.binary, &prog.disasm, reqs, &[])
            .expect("sequential rewrite");
        let par = Rewriter::new(RewriteConfig {
            jobs: Some(4),
            ..RewriteConfig::default()
        })
        .rewrite(&prog.binary, &prog.disasm, reqs, &[])
        .expect("parallel rewrite");
        assert_eq!(par.stats, seq.stats);
        // Site-by-site: same processing order, same tactic chosen.
        assert_eq!(par.reports.len(), seq.reports.len());
        for (p, s) in par.reports.iter().zip(&seq.reports) {
            assert_eq!(p.addr, s.addr);
            assert_eq!(p.tactic, s.tactic, "tactic differs at {:#x}", p.addr);
        }
    }
}

#[test]
fn parallel_handles_empty_and_single_requests() {
    let (prog, reqs) = corpus(400);
    let cfg = RewriteConfig {
        jobs: Some(4),
        ..RewriteConfig::default()
    };
    let out = Rewriter::new(cfg)
        .rewrite(&prog.binary, &prog.disasm, &[], &[])
        .expect("empty request set");
    assert_eq!(out.stats.total(), 0);
    let one = Rewriter::new(cfg)
        .rewrite(&prog.binary, &prog.disasm, &reqs[..1], &[])
        .expect("single request");
    assert_eq!(one.stats.total(), 1);
}

#[test]
fn parallel_reports_first_error_in_processing_order() {
    // Two bogus addresses landing in different shards: the parallel
    // pipeline must report the same (first-processed, i.e. highest)
    // address as the sequential planner.
    let (prog, mut reqs) = corpus(400);
    let h = dependency_horizon();
    let max_site = reqs.iter().map(|r| r.addr).max().unwrap();
    let bogus_low = max_site + 2 * h;
    let bogus_high = max_site + 10 * h;
    reqs.push(PatchRequest {
        addr: bogus_low,
        template: Template::Empty,
    });
    reqs.push(PatchRequest {
        addr: bogus_high,
        template: Template::Empty,
    });
    for jobs in [None, Some(4)] {
        let cfg = RewriteConfig {
            jobs,
            ..RewriteConfig::default()
        };
        let err = Rewriter::new(cfg)
            .rewrite(&prog.binary, &prog.disasm, &reqs, &[])
            .unwrap_err();
        assert_eq!(err, Error::NoSuchInstruction(bogus_high), "jobs={jobs:?}");
    }
}

#[test]
fn dense_corpus_chains_into_one_shard() {
    // Patching *every* jump leaves no gap ≥ H anywhere, so the whole
    // stream is one dependency chain — the cut must honour that (the
    // worst case for parallelism, the safest for correctness).
    let (_, reqs) = corpus(400);
    let shards = shard::shard_requests(&reqs).expect("shard");
    assert_eq!(shards.len(), 1);
    assert_eq!(shards[0].len(), reqs.len());
}

/// Every 8th jump site — the selective-instrumentation shape, with
/// inter-site gaps that regularly exceed the horizon.
fn sparse(reqs: &[PatchRequest]) -> Vec<PatchRequest> {
    let mut sorted = reqs.to_vec();
    sorted.sort_by_key(|r| r.addr);
    sorted.into_iter().step_by(8).collect()
}

#[test]
fn shard_cut_respects_dependency_horizon() {
    // Cross-shard fence: consecutive shards must be separated by at least
    // the dependency horizon, and within a shard consecutive sites must
    // be closer than the horizon.
    let (_, all) = corpus(400);
    let reqs = sparse(&all);
    let shards = shard::shard_requests(&reqs).expect("shard");
    assert!(shards.len() > 1, "sparse corpus produced a single shard");
    let h = dependency_horizon();
    for shard in &shards {
        for w in shard.windows(2) {
            assert!(w[0].addr - w[1].addr < h, "intra-shard gap >= horizon");
        }
    }
    for pair in shards.windows(2) {
        let lower_shard_max = pair[1].first().unwrap().addr;
        let upper_shard_min = pair[0].last().unwrap().addr;
        assert!(
            upper_shard_min - lower_shard_max >= h,
            "fence violation: shards {upper_shard_min:#x} / {lower_shard_max:#x} closer than {h}"
        );
    }
}

#[test]
fn per_site_footprint_stays_below_horizon() {
    // The fence is sound only if every tactic's writes and locks stay in
    // [site, site + H). Patch each corpus site alone with a journaling
    // planner and check the actual footprint against the derived bound.
    let (prog, reqs) = corpus(400);
    let elf = e9elf::Elf::parse(&prog.binary).expect("parse");
    let insns: BTreeMap<u64, Insn> = prog.disasm.iter().map(|i| (i.addr, *i)).collect();
    let cfg = RewriteConfig::default();
    let h = dependency_horizon();
    // A single all-owning lane enables journaling without masking effects.
    let mask = StripeMask::new(4096, 0, 1);
    for req in &reqs {
        let space = Planner::initial_space(&elf, &cfg, &[]);
        let mut planner = Planner::with_space(elf.clone(), &insns, cfg, space, Some(mask));
        planner.patch_site(req.addr, &req.template).expect("site");
        let hi = req.addr + h;
        for (a, s) in planner.locks.iter() {
            assert!(
                a >= req.addr && a < hi,
                "lock at {a:#x} ({s:?}) outside [{:#x}, {hi:#x})",
                req.addr
            );
        }
        let parts = planner.into_parts();
        for (a, bytes) in &parts.journal {
            let end = a + bytes.len() as u64;
            assert!(
                *a >= req.addr && end <= hi,
                "write [{a:#x}, {end:#x}) outside [{:#x}, {hi:#x})",
                req.addr
            );
        }
    }
}

#[test]
fn unreachable_targets_is_a_typed_error() {
    // Regression for the reach-window panic path: an instruction decoded
    // at a degenerate address above the 47-bit ceiling pushes its rel32
    // targets out of every window — formerly this cascaded into unwraps,
    // now it must be a typed error.
    let code = vec![0x48, 0x89, 0x03, 0xC3]; // mov %rax,(%rbx); ret
    let mut b = e9elf::build::ElfBuilder::exec(0x400000);
    b.text(code.clone(), 0x401000);
    b.entry(0x401000);
    let input = b.build();
    let elf = e9elf::Elf::parse(&input).expect("parse");

    let weird = 0xFFFF_FFFF_FFFF_0000u64;
    let mut insns: BTreeMap<u64, Insn> = linear_sweep(&code, 0x401000)
        .into_iter()
        .map(|i| (i.addr, i))
        .collect();
    for i in linear_sweep(&[0x48, 0x89, 0x03], weird) {
        insns.insert(i.addr, i);
    }
    let mut planner = Planner::new(elf, &insns, RewriteConfig::default(), &[]);
    let err = planner.patch_site(weird, &Template::Empty).unwrap_err();
    assert_eq!(err, Error::UnreachableTargets(weird));
}

#[test]
fn empty_target_set_does_not_panic() {
    // Regression: `ret` has no rel32 targets; the old bounds code
    // special-cased this ahead of a pair of `unwrap`s — the fold must
    // yield the unconstrained window and patch normally.
    let code = vec![0xC3, 0x90, 0x90, 0x90, 0x90]; // ret; nops
    let mut b = e9elf::build::ElfBuilder::exec(0x400000);
    b.text(code.clone(), 0x401000);
    b.entry(0x401000);
    let input = b.build();
    let elf = e9elf::Elf::parse(&input).expect("parse");
    let insns: BTreeMap<u64, Insn> = linear_sweep(&code, 0x401000)
        .into_iter()
        .map(|i| (i.addr, i))
        .collect();
    let mut planner = Planner::new(elf, &insns, RewriteConfig::default(), &[]);
    // Outcome (patched or not) is irrelevant; reaching it without a panic
    // or error is the contract.
    planner
        .patch_site(0x401000, &Template::Empty)
        .expect("ret site must not error");
}
