//! Property tests for address-space boundary arithmetic.
//!
//! The planner feeds the allocator windows computed from `lo/hi ± REACH`
//! i128 math; near the guard pages, the 47-bit ceiling, and `u64::MAX`
//! that arithmetic must clamp — never wrap, panic, or misclassify an
//! empty window as usable. These properties drive the allocators with
//! hostile windows, sizes and alignments (including the exact overflow
//! shapes fixed in this change: `alloc_at` end arithmetic, `alloc_in_high`
//! under-the-ceiling stepping, and cursor rounding at `u64::MAX`).

use e9patch::layout::{AddressSpace, StripeMask, Window, MAX_ADDR, MIN_ADDR};
use e9qcheck::prelude::*;

/// Mirror of the planner's rel32 reach margin (kept private there).
const REACH: i128 = 0x7FFF_0000;

props! {
    #[test]
    fn from_i128_always_in_bounds(t in any::<u64>(), neg in any::<bool>()) {
        let centre = if neg { -(t as i128) } else { t as i128 };
        if let Some(w) = Window::from_i128(centre - REACH, centre + REACH) {
            prop_assert!(w.lo >= MIN_ADDR);
            prop_assert!(w.hi <= MAX_ADDR);
            prop_assert!(w.lo < w.hi);
        }
    }

    #[test]
    fn from_i128_near_reach_edges(jitter in 0i64..8192) {
        // Sites whose targets sit near ±REACH of the clamp boundaries —
        // the i32::MIN/MAX-reach shapes from the planner's reach_window.
        for edge in [MIN_ADDR as i128, MAX_ADDR as i128, 0, i32::MIN as i128, i32::MAX as i128] {
            let lo = edge - REACH + jitter as i128;
            let hi = edge + REACH - jitter as i128;
            if let Some(w) = Window::from_i128(lo, hi) {
                prop_assert!(w.lo >= MIN_ADDR && w.hi <= MAX_ADDR && w.lo < w.hi);
            }
        }
    }

    #[test]
    fn alloc_at_never_panics(
        addr in any::<u64>(),
        size in any::<u64>(),
        resv in vec((any::<u64>(), any::<u64>()), 0..6),
    ) {
        let mut a = AddressSpace::new();
        for (s, e) in resv {
            a.reserve(s, e);
        }
        if a.alloc_at(addr, size) {
            let end = addr.checked_add(size);
            prop_assert!(addr >= MIN_ADDR);
            prop_assert_eq!(end.is_some(), true);
            prop_assert!(end.unwrap_or(u64::MAX) <= MAX_ADDR);
        }
    }

    #[test]
    fn alloc_in_hostile_inputs_never_panic(
        lo in any::<u64>(),
        len in any::<u64>(),
        size in any::<u64>(),
        align in any::<u64>(),
    ) {
        let w = Window { lo, hi: lo.saturating_add(len) };
        let mut a = AddressSpace::new();
        if let Some(x) = a.alloc_in(w, size, align) {
            prop_assert!(x >= w.lo && x < w.hi);
            prop_assert!(x.checked_add(size).is_some_and(|e| e <= MAX_ADDR));
        }
        let mut b = AddressSpace::new();
        if let Some(x) = b.alloc_in_high(w, size, align) {
            prop_assert!(x >= w.lo && x < w.hi);
            prop_assert!(x.checked_add(size).is_some_and(|e| e <= MAX_ADDR));
        }
    }

    #[test]
    fn alloc_near_ceiling_respects_bounds(
        back in 0u64..0x4000,
        size in 1u64..0x2000,
        align in 1u64..64,
        resv_back in 0u64..0x1000,
        resv_len in 0u64..0x800,
    ) {
        // Windows hugging the 47-bit ceiling, with a reservation nearby.
        let w = Window { lo: MAX_ADDR - back.min(MAX_ADDR - MIN_ADDR), hi: u64::MAX };
        let mut a = AddressSpace::new();
        a.reserve(MAX_ADDR - resv_back, MAX_ADDR - resv_back + resv_len);
        for x in [a.alloc_in(w, size, align), a.clone().alloc_in_high(w, size, align)]
            .into_iter()
            .flatten()
        {
            prop_assert!(x >= w.lo);
            prop_assert!(x + size <= MAX_ADDR);
            prop_assert_eq!(x % align, 0);
        }
    }

    #[test]
    fn masked_alloc_owned_and_single_chunk(
        pow in 4u32..16,
        lane_raw in any::<u64>(),
        lanes in 1u64..9,
        lo in any::<u64>(),
        len in 0u64..0x100_0000,
        size_raw in any::<u64>(),
        high in any::<bool>(),
    ) {
        let chunk = 1u64 << pow;
        let m = StripeMask::new(chunk, lane_raw % lanes, lanes);
        let size = size_raw % chunk + 1;
        let w = Window { lo, hi: lo.saturating_add(len) };
        let mut a = AddressSpace::new();
        let got = if high {
            a.alloc_in_high_masked(w, size, 1, &m)
        } else {
            a.alloc_in_masked(w, size, 1, &m)
        };
        if let Some(x) = got {
            prop_assert!(x >= w.lo && x < w.hi);
            prop_assert!(m.owns(x), "start not owned");
            prop_assert!(m.owns(x + size - 1), "end not owned");
            prop_assert_eq!(x / chunk, (x + size - 1) / chunk);
            prop_assert!(x + size <= MAX_ADDR);
        }
    }

    #[test]
    fn masked_wide_free_window_always_succeeds(
        pow in 8u32..13,
        lane_raw in any::<u64>(),
        lanes in 1u64..9,
        base_raw in any::<u64>(),
    ) {
        let chunk = 1u64 << pow;
        let m = StripeMask::new(chunk, lane_raw % lanes, lanes);
        let base = MIN_ADDR + base_raw % (MAX_ADDR / 2);
        let w = Window { lo: base, hi: base + m.wide_min() };
        let mut a = AddressSpace::new();
        let x = a.alloc_in_masked(w, chunk, 1, &m);
        prop_assert!(x.is_some(), "wide window must fit a chunk-sized request");
        let mut b = AddressSpace::new();
        let y = b.alloc_in_high_masked(w, chunk, 1, &m);
        prop_assert!(y.is_some(), "wide window must fit (high policy)");
    }

    #[test]
    fn masked_lanes_never_collide(
        pow in 4u32..13,
        lanes in 2u64..9,
        sizes in vec(any::<u64>(), 1..24),
    ) {
        // Every lane allocates from its own clone of one shared space;
        // the union of all allocations must be pairwise disjoint.
        let chunk = 1u64 << pow;
        let w = Window { lo: MIN_ADDR, hi: MIN_ADDR + 64 * chunk * lanes };
        let mut all: Vec<(u64, u64)> = Vec::new();
        for lane in 0..lanes {
            let m = StripeMask::new(chunk, lane, lanes);
            let mut a = AddressSpace::new();
            for s in &sizes {
                let size = s % chunk + 1;
                if let Some(x) = a.alloc_in_masked(w, size, 1, &m) {
                    all.push((x, x + size));
                }
            }
        }
        all.sort_unstable();
        for pair in all.windows(2) {
            prop_assert!(pair[0].1 <= pair[1].0, "lanes collided: {:x?}", pair);
        }
    }
}
