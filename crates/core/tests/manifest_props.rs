//! Property tests for the B0 trap-table manifest codec.
//!
//! The manifest is embedded in the output binary and read back by loaders
//! and external tooling, so `decode` must (a) invert `encode` exactly and
//! (b) treat every malformed byte string — truncations, hostile count
//! fields — as "not a manifest" rather than panicking.

use e9patch::rewriter::manifest;
use e9qcheck::prelude::*;

props! {
    #[test]
    fn encode_decode_round_trips(traps in vec((any::<u64>(), any::<u64>()), 0..64)) {
        let blob = manifest::encode(&traps);
        prop_assert_eq!(manifest::decode(&blob), Some(traps));
    }

    #[test]
    fn truncated_input_never_panics(
        traps in vec((any::<u64>(), any::<u64>()), 0..32),
        cut in 0usize..512,
    ) {
        let blob = manifest::encode(&traps);
        let cut = cut.min(blob.len());
        let prefix = &blob[..cut];
        // Every strict prefix is either rejected or — when the cut lands
        // on an entry boundary past the header — must still decode to a
        // prefix of the original pairs... except the count field pins the
        // length, so any strict prefix must be rejected.
        if cut < blob.len() {
            prop_assert_eq!(manifest::decode(prefix), None);
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in vec(any::<u8>(), 0..256)) {
        // Random data: decode may only succeed if it really is a valid
        // manifest, and must never panic. Re-encoding a successful decode
        // must reproduce a prefix-consistent blob.
        if let Some(traps) = manifest::decode(&bytes) {
            let re = manifest::encode(&traps);
            prop_assert_eq!(&re[..], &bytes[..re.len()]);
        }
    }

    #[test]
    fn hostile_count_fields_are_rejected(count in any::<u64>()) {
        // A header whose count promises more entries than the input holds
        // (including counts that overflow `16 + 16*n`) must be rejected.
        let mut blob = Vec::new();
        blob.extend_from_slice(manifest::MAGIC);
        blob.extend_from_slice(&count.to_le_bytes());
        if count != 0 {
            prop_assert_eq!(manifest::decode(&blob), None);
        } else {
            prop_assert_eq!(manifest::decode(&blob), Some(Vec::new()));
        }
    }
}

#[test]
fn overflow_count_regression() {
    // n = u64::MAX used to overflow `16 + n * 16` and wrap into a bogus
    // "fits" verdict (panicking in debug builds).
    let mut blob = Vec::new();
    blob.extend_from_slice(manifest::MAGIC);
    blob.extend_from_slice(&u64::MAX.to_le_bytes());
    blob.extend_from_slice(&[0u8; 64]);
    assert_eq!(manifest::decode(&blob), None);
}
