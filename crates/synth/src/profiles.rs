//! Benchmark profiles mirroring the paper's Table 1 rows.
//!
//! SPEC2006, the Ubuntu system binaries and the browsers cannot be
//! redistributed, so each row becomes a *seeded synthetic program* whose
//! rewriting-relevant characteristics track the original: PIE vs non-PIE,
//! patch-location count (scaled by [`DEFAULT_SCALE`]), instruction-mix
//! flavour (integer / floating-point-like / memory-bound), and `.bss`
//! pressure (the gamess/zeusmp limitation-L1 rows). Paper reference
//! numbers are carried along for the report generators.

/// Default down-scaling of patch-location counts relative to the paper
/// (synthetic site counts = paper `#Loc` / scale).
pub const DEFAULT_SCALE: u64 = 50;

/// Instruction-mix flavour, loosely tracking source language/domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Branchy integer code (perlbench, gcc, gobmk, browsers' C++ …).
    Int,
    /// Long arithmetic runs, fewer short branches (Fortran float codes).
    Float,
    /// Pointer/heap heavy (mcf, lbm, omnetpp).
    Mem,
    /// DOM-kernel style: tree walking, attribute stores (Dromaeo).
    Browser,
}

/// Statement-mix weights used by the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// Register arithmetic (add/sub/xor/imul…).
    pub arith: u32,
    /// Long immediates (`movabs`) and other ≥ 7-byte instructions.
    pub longmov: u32,
    /// Heap stores (A2 sites).
    pub heap_write: u32,
    /// Heap loads.
    pub heap_read: u32,
    /// push/pop pairs (single-byte instructions — limitation L2 fodder).
    pub stack: u32,
    /// `lea` address arithmetic.
    pub lea: u32,
    /// Extra intra-block short conditional branches (A1 sites).
    pub branch: u32,
}

impl Preset {
    /// The statement mix for this preset.
    pub fn mix(self) -> Mix {
        match self {
            Preset::Int => Mix {
                arith: 30,
                longmov: 6,
                heap_write: 10,
                heap_read: 10,
                stack: 8,
                lea: 8,
                branch: 28,
            },
            Preset::Float => Mix {
                arith: 55,
                longmov: 14,
                heap_write: 9,
                heap_read: 10,
                stack: 2,
                lea: 4,
                branch: 6,
            },
            Preset::Mem => Mix {
                arith: 18,
                longmov: 5,
                heap_write: 22,
                heap_read: 25,
                stack: 5,
                lea: 10,
                branch: 15,
            },
            Preset::Browser => Mix {
                arith: 22,
                longmov: 6,
                heap_write: 16,
                heap_read: 20,
                stack: 6,
                lea: 10,
                branch: 20,
            },
        }
    }
}

/// Paper reference numbers for one Table 1 row (for report columns; the
/// reproduction regenerates its own measurements).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Binary size in MB.
    pub size_mb: f64,
    /// A1 (#jmp/jcc) patch locations.
    pub a1_loc: u64,
    /// A2 (heap writes) patch locations.
    pub a2_loc: u64,
    /// Paper's reported A1 Succ%.
    pub a1_succ: f64,
    /// Paper's reported A2 Succ%.
    pub a2_succ: f64,
}

/// One synthetic benchmark profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Row name (the paper's benchmark name).
    pub name: String,
    /// Position-independent executable?
    pub pie: bool,
    /// RNG seed (derived from the name for stability).
    pub seed: u64,
    /// Number of generated functions.
    pub funcs: usize,
    /// Blocks per function (min, max).
    pub blocks_per_fn: (usize, usize),
    /// Statements per block (min, max).
    pub stmts_per_block: (usize, usize),
    /// Statement mix.
    pub mix: Mix,
    /// Fraction (0–100) of functions containing an indirect-jump switch.
    pub switch_pct: u32,
    /// Percent chance a block contains a call.
    pub call_pct: u32,
    /// Per-function loop trip count (workload length knob).
    pub loop_iters: u32,
    /// `.bss` reservation in bytes (limitation L1 pressure).
    pub bss_bytes: u64,
    /// Interleave data blobs between functions in `.text` (the paper's
    /// §6.2 Chrome challenge: .text contains a mixture of data and code).
    pub data_in_text: bool,
    /// Paper reference numbers, if this row exists in Table 1.
    pub paper: Option<PaperRow>,
}

fn name_seed(name: &str) -> u64 {
    // FNV-1a, deterministic across runs.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl Profile {
    /// Build a profile scaled from a paper row.
    #[allow(clippy::too_many_arguments)]
    pub fn scaled(
        name: &str,
        pie: bool,
        preset: Preset,
        paper: PaperRow,
        scale: u64,
        bss_bytes: u64,
        loop_iters: u32,
    ) -> Profile {
        let target_a1 = (paper.a1_loc / scale).max(24);
        // Each block ends in roughly 1 branch, plus mix-weighted extras.
        let mix = preset.mix();
        let total_weight: u32 = mix.arith
            + mix.longmov
            + mix.heap_write
            + mix.heap_read
            + mix.stack
            + mix.lea
            + mix.branch;
        let stmts = 7usize;
        let branches_per_block = 1.0 + stmts as f64 * mix.branch as f64 / total_weight as f64;
        let blocks = (target_a1 as f64 / branches_per_block).ceil() as usize;
        let blocks_per_fn = (3usize, 9usize);
        let funcs = (blocks / 6).clamp(2, 50_000);
        Profile {
            name: name.to_string(),
            pie,
            seed: name_seed(name),
            funcs,
            blocks_per_fn,
            stmts_per_block: (4, 11),
            mix,
            switch_pct: 25,
            call_pct: 18,
            loop_iters,
            bss_bytes,
            data_in_text: false,
            paper: Some(paper),
        }
    }

    /// A small, quick profile for tests and the quickstart example.
    pub fn tiny(name: &str, pie: bool) -> Profile {
        Profile {
            name: name.to_string(),
            pie,
            seed: name_seed(name),
            funcs: 4,
            blocks_per_fn: (2, 5),
            stmts_per_block: (3, 8),
            mix: Preset::Int.mix(),
            switch_pct: 50,
            call_pct: 25,
            loop_iters: 6,
            bss_bytes: 0,
            data_in_text: false,
            paper: None,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn row(
    name: &str,
    pie: bool,
    preset: Preset,
    size_mb: f64,
    a1: u64,
    a2: u64,
    a1_succ: f64,
    a2_succ: f64,
    scale: u64,
    bss: u64,
    iters: u32,
) -> Profile {
    Profile::scaled(
        name,
        pie,
        preset,
        PaperRow {
            size_mb,
            a1_loc: a1,
            a2_loc: a2,
            a1_succ,
            a2_succ,
        },
        scale,
        bss,
        iters,
    )
}

/// The 28 SPEC2006 rows of Table 1 (compiled non-PIE, as in the paper).
pub fn spec_profiles(scale: u64) -> Vec<Profile> {
    use Preset::*;
    // Columns: size MB, A1 #Loc, A2 #Loc, A1 Succ%, A2 Succ%.
    // The gamess/zeusmp rows get a large .bss (limitation L1).
    vec![
        row("perlbench", false, Int, 1.25, 36821, 7522, 100.0, 100.0, scale, 0, 6),
        row("bzip2", false, Int, 0.07, 1484, 1044, 100.0, 100.0, scale, 0, 10),
        row("gcc", false, Int, 3.77, 97901, 14328, 100.0, 100.0, scale, 0, 3),
        row("bwaves", false, Float, 0.08, 314, 1168, 100.0, 100.0, scale, 0, 12),
        row("gamess", false, Float, 12.22, 125620, 279592, 99.73, 99.94, scale, 0x5000_0000, 2),
        row("mcf", false, Mem, 0.02, 295, 220, 100.0, 100.0, scale, 0, 12),
        row("milc", false, Float, 0.14, 1940, 699, 100.0, 100.0, scale, 0, 10),
        row("zeusmp", false, Float, 0.52, 3191, 6106, 98.68, 99.82, scale, 0x4000_0000, 6),
        row("gromacs", false, Float, 1.20, 12058, 16940, 100.0, 100.0, scale, 0, 4),
        row("cactusADM", false, Float, 0.91, 12847, 5420, 100.0, 100.0, scale, 0, 4),
        row("leslie3d", false, Float, 0.18, 2584, 2761, 100.0, 100.0, scale, 0, 8),
        row("namd", false, Float, 0.33, 4879, 2498, 100.0, 100.0, scale, 0, 6),
        row("gobmk", false, Int, 4.03, 17912, 2777, 100.0, 100.0, scale, 0, 4),
        row("dealII", false, Int, 4.20, 61317, 25590, 100.0, 99.99, scale, 0, 3),
        row("soplex", false, Int, 0.49, 10125, 4188, 100.0, 100.0, scale, 0, 5),
        row("povray", false, Int, 1.19, 20520, 9377, 100.0, 100.0, scale, 0, 4),
        row("calculix", false, Float, 2.17, 30343, 32197, 100.0, 100.0, scale, 0, 3),
        row("hmmer", false, Int, 0.33, 6748, 3061, 100.0, 100.0, scale, 0, 6),
        row("sjeng", false, Int, 0.16, 3473, 683, 100.0, 100.0, scale, 0, 8),
        row("GemsFDTD", false, Float, 0.58, 9120, 10345, 100.0, 100.0, scale, 0, 4),
        row("libquantum", false, Int, 0.05, 732, 186, 100.0, 100.0, scale, 0, 12),
        row("h264ref", false, Int, 0.58, 9920, 4981, 100.0, 100.0, scale, 0, 5),
        row("tonto", false, Float, 6.21, 48247, 164788, 100.0, 100.0, scale, 0, 2),
        row("lbm", false, Mem, 0.02, 106, 111, 100.0, 100.0, scale, 0, 14),
        row("omnetpp", false, Mem, 0.79, 9568, 5020, 100.0, 100.0, scale, 0, 5),
        row("astar", false, Mem, 0.05, 769, 491, 100.0, 100.0, scale, 0, 12),
        row("sphinx3", false, Float, 0.21, 3500, 1159, 100.0, 100.0, scale, 0, 8),
        row("xalancbmk", false, Int, 5.99, 81285, 32761, 100.0, 100.0, scale, 0, 3),
    ]
}

/// The system-binary rows of Table 1 (inkscape, gimp, vim, …).
pub fn system_profiles(scale: u64) -> Vec<Profile> {
    use Preset::*;
    vec![
        row("inkscape", true, Int, 15.44, 195731, 105431, 100.0, 100.0, scale, 0, 2),
        row("gimp", false, Int, 5.75, 71321, 15730, 100.0, 100.0, scale, 0, 2),
        row("vim", true, Int, 2.44, 72221, 13279, 100.0, 100.0, scale, 0, 2),
        row("git", false, Int, 1.87, 44441, 9072, 100.0, 100.0, scale, 0, 3),
        row("pdflatex", false, Int, 0.91, 22105, 6060, 100.0, 100.0, scale, 0, 3),
        row("xterm", false, Int, 0.54, 11593, 2681, 100.0, 100.0, scale, 0, 4),
        row("evince", true, Int, 0.42, 3636, 716, 100.0, 100.0, scale, 0, 6),
        row("make", false, Int, 0.21, 4807, 1383, 100.0, 100.0, scale, 0, 6),
        row("libc.so", false, Int, 1.87, 52393, 24686, 100.0, 100.0, scale, 0, 3),
        row("libstdc++.so", false, Int, 1.57, 20593, 15442, 100.0, 100.0, scale, 0, 3),
    ]
}

/// Browser-scale rows (Chrome, the small FireFox launcher, libxul).
pub fn browser_profiles(scale: u64) -> Vec<Profile> {
    use Preset::*;
    let mut v = vec![
        row("chrome", true, Browser, 152.51, 3800565, 2624800, 100.0, 100.0, scale, 0, 1),
        row("firefox", true, Browser, 0.52, 13971, 7355, 100.0, 100.0, scale, 0, 4),
        row("libxul.so", false, Browser, 115.03, 1463369, 666109, 99.99, 100.0, scale, 0, 1),
    ];
    // The paper found Chrome's .text to be a mixture of data and code
    // (§6.2); reproduce that wrinkle on the chrome-class row.
    v[0].data_in_text = true;
    v
}

/// All Table 1 rows.
pub fn all_profiles(scale: u64) -> Vec<Profile> {
    let mut v = spec_profiles(scale);
    v.extend(system_profiles(scale));
    v.extend(browser_profiles(scale));
    v
}

/// The fourteen Dromaeo DOM sub-benchmarks of Figure 4.
pub const DROMAEO_KERNELS: [&str; 14] = [
    "Attrib",
    "Attrib.Proto",
    "Attrib.jQuery",
    "Modify",
    "Modify.Proto",
    "Modify.jQuery",
    "Query",
    "Style.Proto",
    "Style.jQuery",
    "Events.Proto",
    "Events.jQuery",
    "Traverse",
    "Traverse.Proto",
    "Traverse.jQuery",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        let a = Profile::tiny("alpha", false);
        let b = Profile::tiny("alpha", false);
        let c = Profile::tiny("beta", false);
        assert_eq!(a.seed, b.seed);
        assert_ne!(a.seed, c.seed);
    }

    #[test]
    fn table1_row_counts() {
        assert_eq!(spec_profiles(50).len(), 28);
        assert_eq!(system_profiles(50).len(), 10);
        assert_eq!(browser_profiles(50).len(), 3);
        assert_eq!(all_profiles(50).len(), 41);
    }

    #[test]
    fn scaling_tracks_paper_loc() {
        let ps = spec_profiles(50);
        let gcc = ps.iter().find(|p| p.name == "gcc").unwrap();
        let lbm = ps.iter().find(|p| p.name == "lbm").unwrap();
        assert!(gcc.funcs > lbm.funcs * 10);
    }

    #[test]
    fn pie_rows_marked() {
        let all = all_profiles(50);
        assert!(all.iter().find(|p| p.name == "chrome").unwrap().pie);
        assert!(all.iter().find(|p| p.name == "vim").unwrap().pie);
        assert!(!all.iter().find(|p| p.name == "gcc").unwrap().pie);
    }

    #[test]
    fn l1_rows_have_bss() {
        let all = all_profiles(50);
        assert!(all.iter().find(|p| p.name == "gamess").unwrap().bss_bytes > 0);
        assert!(all.iter().find(|p| p.name == "zeusmp").unwrap().bss_bytes > 0);
        assert_eq!(all.iter().find(|p| p.name == "gcc").unwrap().bss_bytes, 0);
    }
}
