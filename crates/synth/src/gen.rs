//! The synthetic program generator.
//!
//! Emits real, runnable x86-64 programs from a [`Profile`]: a DAG of
//! functions (calls only go to higher indices — no recursion), bounded
//! per-function loops, a global *fuel* counter bounding total dynamic work,
//! jump-table switches (indirect control flow no static analysis could
//! recover), and a seeded statement mix that produces realistic
//! instruction-length and successor-byte diversity — the raw material the
//! pun tactics feed on.
//!
//! Register convention inside generated code:
//!
//! | register | role |
//! |----------|------|
//! | `rbx`    | heap buffer base (set once in `main`) |
//! | `r12`    | global checksum accumulator |
//! | `r13`    | per-function loop counter (callee-saved) |
//! | `r14`    | jump-table base (scratch) |
//! | others   | block-local scratch, re-seeded after calls |

use crate::profiles::Profile;
use e9elf::build::ElfBuilder;
use e9x86::asm::{Asm, Label, Mem};
use e9x86::insn::{Cond, Insn};
use e9x86::reg::{Reg, Width};
use e9rng::StdRng;

/// A generated benchmark binary plus its disassembly information.
#[derive(Debug, Clone)]
pub struct SynthBinary {
    /// The ELF file image.
    pub binary: Vec<u8>,
    /// Disassembly info for the code region (the rewriter's input).
    pub disasm: Vec<Insn>,
    /// Entry point.
    pub entry: u64,
    /// `.text` load address.
    pub text_vaddr: u64,
    /// Bytes of actual code (the jump tables that follow are excluded
    /// from `disasm`).
    pub code_len: usize,
}

const HEAP_BYTES: u64 = 4096;
const SCRATCH: [Reg; 7] = [
    Reg::Rax,
    Reg::Rcx,
    Reg::Rdx,
    Reg::Rsi,
    Reg::Rdi,
    Reg::R8,
    Reg::R9,
];

struct Gen<'a> {
    a: Asm,
    rng: StdRng,
    p: &'a Profile,
    fn_labels: Vec<Label>,
    /// Deferred jump tables: (table label, case labels).
    tables: Vec<(Label, Vec<Label>)>,
    fuel_addr: u64,
    seeded: [bool; SCRATCH.len()],
}

impl<'a> Gen<'a> {
    fn pick_scratch(&mut self) -> (usize, Reg) {
        let i = self.rng.gen_range(0..SCRATCH.len());
        (i, SCRATCH[i])
    }

    /// A scratch register guaranteed to hold a deterministic value.
    fn seeded_scratch(&mut self) -> Reg {
        let (i, r) = self.pick_scratch();
        if !self.seeded[i] {
            // Derive from the global accumulator — deterministic.
            self.a.mov_rr(Width::Q, r, Reg::R12);
            self.seeded[i] = true;
        }
        r
    }

    fn invalidate_scratch(&mut self) {
        self.seeded = [false; SCRATCH.len()];
    }

    /// One random straight-line statement.
    fn stmt(&mut self) {
        let m = self.p.mix;
        let total = m.arith + m.longmov + m.heap_write + m.heap_read + m.stack + m.lea + m.branch;
        let mut pick = self.rng.gen_range(0..total);
        let mut take = |w: u32| {
            if pick < w {
                true
            } else {
                pick -= w;
                false
            }
        };
        if take(m.arith) {
            let dst = self.seeded_scratch();
            let w = if self.rng.gen_bool(0.6) { Width::Q } else { Width::D };
            match self.rng.gen_range(0..6) {
                0 => {
                    let src = self.seeded_scratch();
                    self.a.add_rr(w, dst, src);
                }
                1 => {
                    let src = self.seeded_scratch();
                    self.a.xor_rr(w, dst, src);
                }
                2 => self.a.add_ri(w, dst, self.rng.gen_range(1..1000)),
                3 => {
                    let src = self.seeded_scratch();
                    self.a.imul_rr(Width::Q, dst, src);
                }
                4 => self.a.shl_ri(w, dst, self.rng.gen_range(1..5)),
                _ => {
                    let src = self.seeded_scratch();
                    self.a.sub_rr(w, dst, src);
                }
            }
            // Fold into the accumulator now and then.
            if self.rng.gen_bool(0.3) {
                self.a.add_rr(Width::Q, Reg::R12, dst);
            }
        } else if take(m.longmov) {
            let (i, dst) = self.pick_scratch();
            self.a.mov_ri64(dst, self.rng.gen::<i64>());
            self.seeded[i] = true;
            self.a.add_rr(Width::Q, Reg::R12, dst);
        } else if take(m.heap_write) {
            let idx = self.seeded_scratch();
            self.a.and_ri(Width::Q, idx, 0xFF);
            let src = self.seeded_scratch();
            let disp = self.rng.gen_range(0..8) * 8;
            let mem = Mem::base_index(Reg::Rbx, idx, 8, disp);
            match self.rng.gen_range(0..5) {
                0 => self.a.mov_mr(Width::Q, mem, src),
                1 => self.a.mov_mr(Width::D, mem, src),
                2 => self.a.add_mr(Width::Q, mem, src),
                3 => self.a.mov_mi(Width::D, mem, self.rng.gen_range(0..1_000_000)),
                _ => self.a.inc_m(Width::Q, mem),
            }
        } else if take(m.heap_read) {
            let idx = self.seeded_scratch();
            self.a.and_ri(Width::Q, idx, 0xFF);
            let (di, dst) = self.pick_scratch();
            let disp = self.rng.gen_range(0..8) * 8;
            let mem = Mem::base_index(Reg::Rbx, idx, 8, disp);
            if self.rng.gen_bool(0.3) {
                self.a.movzx_b(dst, mem);
            } else {
                self.a.mov_rm(Width::Q, dst, mem);
            }
            self.seeded[di] = true;
            self.a.add_rr(Width::Q, Reg::R12, dst);
        } else if take(m.stack) {
            // push/pop pair — two single-byte instructions (L2 fodder).
            let r = self.seeded_scratch();
            self.a.push_r(r);
            self.a.pop_r(r);
        } else if take(m.lea) {
            let src = self.seeded_scratch();
            let (di, dst) = self.pick_scratch();
            self.a
                .lea(dst, Mem::base_disp(src, self.rng.gen_range(-64..256)));
            self.seeded[di] = true;
        } else {
            // Extra branch over the next statement. Seed the target
            // register *before* the branch — a seed emitted inside the
            // skipped region would leave the register holding pre-entry
            // garbage on the taken path.
            let dst = self.seeded_scratch();
            let r = self.seeded_scratch();
            let skip = self.a.fresh_label();
            self.a.cmp_ri(Width::Q, r, self.rng.gen_range(0..64));
            let cond = Cond::from_nibble(self.rng.gen_range(0..16));
            if self.rng.gen_bool(0.35) {
                self.a.jcc_short(cond, skip);
            } else {
                self.a.jcc(cond, skip);
            }
            self.a.add_ri(Width::Q, dst, 1);
            self.a.bind(skip);
        }
    }

    fn emit_switch(&mut self) {
        let k = 4usize;
        let table = self.a.fresh_label();
        let cases: Vec<Label> = (0..k).map(|_| self.a.fresh_label()).collect();
        let join = self.a.fresh_label();
        let idx = self.seeded_scratch();
        self.a.and_ri(Width::Q, idx, (k - 1) as i32);
        self.a.mov_rlabel(Reg::R14, table);
        self.a.jmp_ind_m(Mem::base_index(Reg::R14, idx, 8, 0));
        for (c, case) in cases.iter().enumerate() {
            self.a.bind(*case);
            self.a.add_ri(Width::Q, Reg::R12, (c as i32 + 1) * 3);
            self.a.jmp(join);
        }
        self.a.bind(join);
        self.tables.push((table, cases));
        self.invalidate_scratch(); // idx/r14 now stale conventions
    }

    fn emit_function(&mut self, i: usize) {
        self.a.bind(self.fn_labels[i]);
        let out = self.a.fresh_label();
        // Fuel gate: decrement the global budget; skip the body once
        // exhausted (bounds total dynamic work over any call structure).
        self.a.mov_ri64(Reg::Rax, self.fuel_addr as i64);
        self.a.inc_m(Width::Q, Mem::base_disp(Reg::Rax, 8)); // call count
        self.a.raw(&[0x48, 0xFF, 0x08]); // decq (%rax)
        self.a.jcc(Cond::S, out);

        self.a.push_r(Reg::R13);
        let loop_head = self.a.fresh_label();
        self.a.mov_ri32(Reg::R13, self.p.loop_iters);
        self.a.bind(loop_head);
        self.invalidate_scratch();

        let nblocks = self
            .rng
            .gen_range(self.p.blocks_per_fn.0..=self.p.blocks_per_fn.1);
        let block_labels: Vec<Label> = (0..nblocks).map(|_| self.a.fresh_label()).collect();
        let has_switch = self.rng.gen_range(0u32..100) < self.p.switch_pct;
        let switch_at = if has_switch && nblocks > 1 {
            Some(self.rng.gen_range(0..nblocks))
        } else {
            None
        };

        for b in 0..nblocks {
            self.a.bind(block_labels[b]);
            let nstmts = self
                .rng
                .gen_range(self.p.stmts_per_block.0..=self.p.stmts_per_block.1);
            for _ in 0..nstmts {
                self.stmt();
            }
            if Some(b) == switch_at {
                self.emit_switch();
            }
            if self.rng.gen_range(0u32..100) < self.p.call_pct && i + 1 < self.fn_labels.len() {
                let j = self.rng.gen_range(i + 1..self.fn_labels.len());
                let callee = self.fn_labels[j];
                if self.rng.gen_bool(0.25) {
                    // Indirect call through a function-pointer table —
                    // control flow no static analysis could recover, like
                    // C++ virtual dispatch.
                    let k = (self.fn_labels.len() - (i + 1)).min(4);
                    let callees: Vec<Label> = (0..k)
                        .map(|_| {
                            self.fn_labels[self.rng.gen_range(i + 1..self.fn_labels.len())]
                        })
                        .collect();
                    let tbl = self.a.fresh_label();
                    let idx = self.seeded_scratch();
                    self.a.and_ri(Width::Q, idx, (k - 1) as i32);
                    self.a.mov_rlabel(Reg::R14, tbl);
                    self.a
                        .mov_rm(Width::Q, Reg::R14, Mem::base_index(Reg::R14, idx, 8, 0));
                    self.a.call_ind_r(Reg::R14);
                    self.tables.push((tbl, callees));
                } else {
                    self.a.call(callee);
                }
                self.invalidate_scratch();
                self.a.add_rr(Width::Q, Reg::R12, Reg::Rax);
            }
            // Terminator: conditional branch forward.
            if b + 1 < nblocks {
                let r = self.seeded_scratch();
                self.a.cmp_ri(Width::Q, r, self.rng.gen_range(0..100));
                let cond = Cond::from_nibble(self.rng.gen_range(0..16));
                if self.rng.gen_bool(0.5) {
                    // Short form to the immediately following block.
                    self.a.jcc_short(cond, block_labels[b + 1]);
                } else {
                    // Near form, possibly skipping a block.
                    let tgt = if b + 2 < nblocks && self.rng.gen_bool(0.3) {
                        block_labels[b + 2]
                    } else {
                        block_labels[b + 1]
                    };
                    self.a.jcc(cond, tgt);
                }
                self.invalidate_scratch();
            }
        }

        // Loop back edge.
        self.a.sub_ri(Width::Q, Reg::R13, 1);
        self.a.jcc(Cond::Ne, loop_head);
        self.a.pop_r(Reg::R13);
        self.a.bind(out);
        self.a.mov_rr(Width::Q, Reg::Rax, Reg::R12);
        self.a.ret();
        self.invalidate_scratch();
    }
}

/// Generate the synthetic binary for `profile`.
///
/// The layout is: `.text` = `main` + all functions + (page-aligned) jump
/// tables; `.data` = fuel cell + call counter; optional `.bss` for the
/// limitation-L1 profiles.
pub fn generate(profile: &Profile) -> SynthBinary {
    let base = if profile.pie { 0x5555_5555_4000 } else { 0x400000 };
    let text_vaddr = base + 0x1000;

    // Rough text-size bound to place .data after it.
    // (Measured ~55 bytes/stmt worst case; generous.)
    let mut g = Gen {
        a: Asm::new(text_vaddr),
        rng: StdRng::seed_from_u64(profile.seed),
        p: profile,
        fn_labels: Vec::new(),
        tables: Vec::new(),
        fuel_addr: 0, // patched below once data vaddr is known
        seeded: [false; SCRATCH.len()],
    };

    // We need the data address before emitting code; estimate the text
    // extent generously and verify after generation.
    let est_stmts = profile.funcs
        * profile.blocks_per_fn.1
        * (profile.stmts_per_block.1 + 6);
    let est_text = (est_stmts * 40 + 4096) as u64;
    let data_vaddr = e9elf::page_ceil(text_vaddr + est_text) + e9elf::PAGE_SIZE;
    g.fuel_addr = data_vaddr;

    g.fn_labels = (0..profile.funcs).map(|_| g.a.fresh_label()).collect();

    // ---- main -----------------------------------------------------------
    let entry = g.a.here();
    g.a.mov_ri32(Reg::R12, 0);
    g.a.mov_ri64(Reg::Rax, 0xE901); // SYS_MALLOC
    g.a.mov_ri32(Reg::Rdi, HEAP_BYTES as u32);
    g.a.syscall();
    g.a.mov_rr(Width::Q, Reg::Rbx, Reg::Rax);
    // Call a few roots; the DAG fans out from there under the fuel bound.
    let roots = profile.funcs.min(3);
    for r in 0..roots {
        let label = g.fn_labels[r];
        g.a.call(label);
        g.a.add_rr(Width::Q, Reg::R12, Reg::Rax);
    }
    // write(1, &r12, 8)
    g.a.push_r(Reg::R12);
    g.a.mov_rr(Width::Q, Reg::Rsi, Reg::Rsp);
    g.a.mov_ri32(Reg::Rax, 1);
    g.a.mov_ri32(Reg::Rdi, 1);
    g.a.mov_ri32(Reg::Rdx, 8);
    g.a.syscall();
    g.a.pop_r(Reg::R12);
    // exit(r12 & 0x7F)
    g.a.mov_rr(Width::Q, Reg::Rdi, Reg::R12);
    g.a.and_ri(Width::Q, Reg::Rdi, 0x7F);
    g.a.mov_ri32(Reg::Rax, 60);
    g.a.syscall();

    // ---- functions -------------------------------------------------------
    // `ranges` records the (offset, len) extents of real code; data blobs
    // interleaved between functions (the §6.2 Chrome wrinkle) fall outside
    // every range.
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    let mut range_start = 0usize;
    let mut symbols = vec![e9elf::symbols::Symbol {
        name: "main".into(),
        value: entry,
        size: 0,
    }];
    for i in 0..profile.funcs {
        let fn_start = g.a.here();
        g.emit_function(i);
        symbols.push(e9elf::symbols::Symbol {
            name: format!("f{i:04}"),
            value: fn_start,
            size: g.a.here() - fn_start,
        });
        if profile.data_in_text && g.rng.gen_bool(0.25) {
            // End the current code range, splice in a data blob.
            ranges.push((range_start, g.a.len() - range_start));
            let blob_len = g.rng.gen_range(8..64usize);
            let blob: Vec<u8> = (0..blob_len).map(|_| g.rng.gen()).collect();
            g.a.raw(&blob);
            range_start = g.a.len();
        }
    }
    // Trailing alignment pad so end-of-text sites still have pun bytes.
    g.a.nops(16);

    let code_len = g.a.len();
    ranges.push((range_start, code_len - range_start));

    // ---- jump tables (data-in-text tail, excluded from disassembly) ----
    while !g.a.len().is_multiple_of(8) {
        g.a.raw(&[0]);
    }
    let tables = std::mem::take(&mut g.tables);
    for (table, cases) in tables {
        g.a.bind(table);
        for c in cases {
            g.a.dq_label(c);
        }
    }

    let code = g.a.finish().expect("generator assembly");
    assert!(
        (text_vaddr + code.len() as u64) < data_vaddr,
        "text overflowed its estimate: {} vs {}",
        code.len(),
        est_text
    );

    let mut disasm = Vec::new();
    let mut code_bytes = 0usize;
    for &(off, len) in &ranges {
        let part = e9x86::decode::linear_sweep(&code[off..off + len], text_vaddr + off as u64);
        let decoded: usize = part.iter().map(|x| x.len()).sum();
        assert_eq!(decoded, len, "generated code has undecodable gaps");
        code_bytes += len;
        disasm.extend(part);
    }
    debug_assert!(code_bytes <= code_len);

    // .data: fuel + call counter.
    let fuel = fuel_for(profile);
    let mut data = Vec::new();
    data.extend_from_slice(&fuel.to_le_bytes());
    data.extend_from_slice(&0u64.to_le_bytes());

    let mut b = if profile.pie {
        ElfBuilder::pie(base)
    } else {
        ElfBuilder::exec(base)
    };
    b.text(code, text_vaddr);
    // Record the true code extents (interleaved data blobs and the jump
    // tables at the .text tail are data); frontends use this to bound
    // their linear sweeps. Format: n × (vaddr u64, len u64).
    let mut note = Vec::with_capacity(ranges.len() * 16);
    for &(off, len) in &ranges {
        note.extend_from_slice(&(text_vaddr + off as u64).to_le_bytes());
        note.extend_from_slice(&(len as u64).to_le_bytes());
    }
    b.note(".note.e9code", note);
    // Function symbols (real binaries often have them; the paper's tool
    // works without, but frontends may exploit them).
    let (symtab, strtab) = e9elf::symbols::encode(&symbols);
    b.note(".symtab", symtab);
    b.note(".strtab", strtab);
    b.data(data, data_vaddr);
    if profile.bss_bytes > 0 {
        let bss_vaddr = e9elf::page_ceil(data_vaddr + 0x1000) + e9elf::PAGE_SIZE;
        b.bss(profile.bss_bytes, bss_vaddr);
    }
    b.entry(entry);

    SynthBinary {
        binary: b.build(),
        disasm,
        entry,
        text_vaddr,
        code_len,
    }
}

/// Dynamic work budget: enough to touch a spread of functions without
/// letting big profiles run for minutes in the interpreter.
fn fuel_for(profile: &Profile) -> u64 {
    (profile.funcs as u64 * 2).clamp(200, 4000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{Preset, Profile};

    fn tiny() -> Profile {
        Profile::tiny("testprog", false)
    }

    #[test]
    fn generates_and_runs() {
        let sb = generate(&tiny());
        let r = e9vm::run_binary(&sb.binary, 50_000_000).expect("run");
        assert_eq!(r.output.len(), 8, "checksum written to stdout");
    }

    #[test]
    fn deterministic() {
        let a = generate(&tiny());
        let b = generate(&tiny());
        assert_eq!(a.binary, b.binary);
        let ra = e9vm::run_binary(&a.binary, 50_000_000).unwrap();
        let rb = e9vm::run_binary(&b.binary, 50_000_000).unwrap();
        assert_eq!(ra.output, rb.output);
        assert_eq!(ra.insns, rb.insns);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&Profile::tiny("one", false));
        let b = generate(&Profile::tiny("two", false));
        assert_ne!(a.binary, b.binary);
    }

    #[test]
    fn disasm_covers_code_exactly() {
        let sb = generate(&tiny());
        let end = sb.disasm.last().map(|i| i.end()).unwrap();
        assert_eq!(end, sb.text_vaddr + sb.code_len as u64);
    }

    #[test]
    fn has_a1_and_a2_sites() {
        let sb = generate(&tiny());
        let a1 = sb.disasm.iter().filter(|i| i.kind.is_jump()).count();
        let a2 = sb.disasm.iter().filter(|i| i.is_heap_write()).count();
        assert!(a1 >= 5, "a1={a1}");
        assert!(a2 >= 3, "a2={a2}");
    }

    #[test]
    fn switches_emit_indirect_jumps() {
        let mut p = tiny();
        p.switch_pct = 100;
        p.funcs = 6;
        let sb = generate(&p);
        assert!(
            sb.disasm.iter().any(|i| i.kind == e9x86::Kind::JmpInd),
            "no indirect jumps despite switch_pct=100"
        );
        // And the binary still runs.
        let r = e9vm::run_binary(&sb.binary, 50_000_000).unwrap();
        assert_eq!(r.output.len(), 8);
    }

    #[test]
    fn pie_profile_loads_high() {
        let sb = generate(&Profile::tiny("pietest", true));
        assert!(sb.text_vaddr > 0x5000_0000_0000);
        let r = e9vm::run_binary(&sb.binary, 50_000_000).expect("run");
        assert_eq!(r.output.len(), 8);
    }

    #[test]
    fn scaled_profile_hits_site_target() {
        let p = Profile::scaled(
            "sized",
            false,
            Preset::Int,
            crate::profiles::PaperRow {
                size_mb: 1.0,
                a1_loc: 36821,
                a2_loc: 7522,
                a1_succ: 100.0,
                a2_succ: 100.0,
            },
            50,
            0,
            4,
        );
        let sb = generate(&p);
        let a1 = sb.disasm.iter().filter(|i| i.kind.is_jump()).count() as f64;
        let target = (36821 / 50) as f64;
        assert!(
            a1 > target * 0.4 && a1 < target * 3.0,
            "a1 sites {a1} vs target {target}"
        );
    }

    #[test]
    fn bss_profile_reserves_memory() {
        let mut p = tiny();
        p.bss_bytes = 0x100000;
        let sb = generate(&p);
        let elf = e9elf::Elf::parse(&sb.binary).unwrap();
        let (_, hi) = elf.vaddr_extent();
        let (_, hi_nobss) = e9elf::Elf::parse(&generate(&tiny()).binary)
            .unwrap()
            .vaddr_extent();
        assert!(hi > hi_nobss);
        // Still runs.
        let r = e9vm::run_binary(&sb.binary, 50_000_000).expect("run");
        assert_eq!(r.output.len(), 8);
    }
}
