//! # e9synth — synthetic x86-64 ELF workload generator
//!
//! The reproduction's substitute for SPEC2006, Ubuntu system binaries and
//! the Chrome/FireFox browsers (see DESIGN.md, substitution 1): each
//! Table 1 row becomes a seeded synthetic program whose
//! rewriting-relevant characteristics (patch-site counts, PIE-ness,
//! instruction mix, `.bss` pressure) track the paper's binaries at
//! 1/[`profiles::DEFAULT_SCALE`] scale.
//!
//! ```
//! use e9synth::{generate, Profile};
//!
//! let prog = generate(&Profile::tiny("demo", false));
//! let result = e9vm::run_binary(&prog.binary, 50_000_000).unwrap();
//! assert_eq!(result.output.len(), 8); // the program's checksum
//! ```

pub mod gen;
pub mod profiles;

pub use gen::{generate, SynthBinary};
pub use profiles::{
    all_profiles, browser_profiles, spec_profiles, system_profiles, Mix, PaperRow, Preset,
    Profile, DEFAULT_SCALE, DROMAEO_KERNELS,
};

/// Generate the Dromaeo-style DOM kernel for Figure 4: sub-benchmark
/// `kernel` of `browser` (each kernel varies the seed and leans on the
/// browser mix — pointer-chasing stores and queries).
pub fn dromaeo_kernel(browser: &str, kernel: &str) -> Profile {
    let mut p = Profile::tiny(&format!("{browser}.{kernel}"), true);
    p.mix = Preset::Browser.mix();
    p.funcs = 10;
    p.blocks_per_fn = (3, 7);
    p.loop_iters = 8;
    p.switch_pct = 40;
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dromaeo_kernels_are_distinct_and_runnable() {
        let a = generate(&dromaeo_kernel("chrome", "Attrib"));
        let b = generate(&dromaeo_kernel("chrome", "Modify"));
        assert_ne!(a.binary, b.binary);
        let r = e9vm::run_binary(&a.binary, 50_000_000).unwrap();
        assert_eq!(r.output.len(), 8);
    }
}
