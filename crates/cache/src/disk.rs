//! The on-disk tier: a content-addressed store under one cache directory.
//!
//! ```text
//! <root>/objects/ab/cdef….   one entry per rewrite key (fan-out on the
//!                            first digest byte, git-object style)
//! <root>/corrupt/<digest>    quarantined entries that failed verification
//! <root>/index               append-only access journal (an LRU hint)
//! <root>/lock                advisory lock for eviction/clear
//! ```
//!
//! **Publish discipline.** Entries are published with the same
//! temp + fsync + atomic-rename sequence as `e9front::output::write_atomic`
//! (re-implemented here — the cache sits *below* the frontend in the crate
//! graph): at every instant an object path either does not exist or holds
//! a complete entry. Concurrent writers of the same key are harmless: both
//! renames publish identical bytes, because keys address content produced
//! by a deterministic pipeline.
//!
//! **Verification.** Every entry is stored as `E9CACHE1 ‖ sha256(payload)
//! ‖ payload` and the checksum is recomputed on every read. A mismatch —
//! truncation, bit rot, a torn write from a crashed foreign writer — is a
//! typed [`CacheError::Corrupt`], never a panic: the entry is moved to
//! `corrupt/` (keeping the evidence) and the caller falls back to a cold
//! rewrite.
//!
//! **Eviction.** `evict_to_budget` is crash-tolerant by construction: the
//! ground truth is a directory scan (sizes + mtimes), and the `index`
//! journal only *refines* the victim order to true access recency. A
//! missing, truncated or garbage index degrades to mtime order; a crash
//! mid-eviction leaves a store that the next scan handles fine.

use crate::sha256::{self, Digest};
use crate::{Blob, CacheError};
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

/// Magic prefix of every on-disk entry.
pub const MAGIC: &[u8; 8] = b"E9CACHE1";

/// Fixed header length: magic + payload checksum.
const HEADER_LEN: usize = 8 + 32;

/// Most files kept under `corrupt/`. Quarantine preserves evidence for
/// postmortems, but a store fed sustained corruption (bad RAM, a dying
/// disk) must not leak unbounded space on *top* of the damage — past
/// the cap the oldest evidence is dropped first.
pub const QUARANTINE_CAP: usize = 32;

/// The on-disk content-addressed store.
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
    /// Total object bytes allowed (`None` = unbounded).
    budget: Option<u64>,
    /// Stale-lock steal threshold for the advisory lock.
    lock_ttl: Duration,
}

/// One scanned object (eviction candidate).
#[derive(Debug)]
struct ScanEntry {
    path: PathBuf,
    digest_hex: String,
    len: u64,
    mtime: SystemTime,
}

impl DiskStore {
    /// Open (creating directories as needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Directory creation failures.
    pub fn open(root: &Path, budget: Option<u64>) -> Result<DiskStore, CacheError> {
        let store = DiskStore {
            root: root.to_path_buf(),
            budget,
            lock_ttl: Duration::from_secs(30),
        };
        fs::create_dir_all(store.objects_dir())
            .map_err(|e| CacheError::io("create objects dir", e))?;
        Ok(store)
    }

    fn objects_dir(&self) -> PathBuf {
        self.root.join("objects")
    }

    fn corrupt_dir(&self) -> PathBuf {
        self.root.join("corrupt")
    }

    fn index_path(&self) -> PathBuf {
        self.root.join("index")
    }

    fn lock_path(&self) -> PathBuf {
        self.root.join("lock")
    }

    /// Path of the object for `key`: `objects/ab/<62 hex>`.
    pub fn object_path(&self, key: &Digest) -> PathBuf {
        let hex = sha256::hex(key);
        self.objects_dir().join(&hex[..2]).join(&hex[2..])
    }

    /// Fetch the payload stored for `key`.
    ///
    /// On a hit the access is journaled (index append + mtime bump) so
    /// eviction sees true recency.
    ///
    /// # Errors
    ///
    /// [`CacheError::Corrupt`] when the entry fails verification (it has
    /// already been quarantined); [`CacheError::Io`] for transport-level
    /// failures. A missing entry is `Ok(None)`, not an error.
    pub fn get(&self, key: &Digest) -> Result<Option<Blob>, CacheError> {
        e9failpt::fail_io("cache.disk.read").map_err(|e| CacheError::io("read cache entry", e))?;
        let path = self.object_path(key);
        let raw = match fs::read(&path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(CacheError::io("read cache entry", e)),
        };
        match decode_entry(&raw) {
            Ok(()) => {
                self.touch(&path);
                self.journal_access(key);
                // The verified payload is served as a view into the read
                // buffer itself — sliced past the header, never copied.
                Ok(Some(Blob::from_vec(raw).tail(HEADER_LEN)))
            }
            Err(reason) => {
                let quarantined = self.quarantine(key, &path);
                Err(CacheError::Corrupt {
                    digest: sha256::hex(key),
                    reason,
                    quarantined,
                })
            }
        }
    }

    /// Publish `payload` under `key` (atomic rename), then journal the
    /// access and evict down to the byte budget if one is set. Returns
    /// the number of entries evicted by the post-put pass.
    ///
    /// # Errors
    ///
    /// Staging/rename failures. Eviction failures are swallowed (they
    /// cost budget adherence until the next successful pass, not
    /// correctness).
    pub fn put(&self, key: &Digest, payload: &[u8]) -> Result<u64, CacheError> {
        let path = self.object_path(key);
        let dir = path.parent().expect("object path has a fan-out parent");
        fs::create_dir_all(dir).map_err(|e| CacheError::io("create fan-out dir", e))?;
        let tmp = dir.join(format!(
            ".{}.{}.tmp",
            path.file_name().expect("object file name").to_string_lossy(),
            std::process::id()
        ));
        let staged: io::Result<()> = (|| {
            e9failpt::fail_io("cache.disk.stage")?;
            let mut f = fs::File::create(&tmp)?;
            f.write_all(MAGIC)?;
            f.write_all(&sha256::digest(payload))?;
            f.write_all(payload)?;
            f.sync_all()
        })();
        if let Err(e) = staged {
            let _ = fs::remove_file(&tmp);
            return Err(CacheError::io("stage cache entry", e));
        }
        let published = e9failpt::fail_io("cache.disk.publish").and_then(|()| fs::rename(&tmp, &path));
        if let Err(e) = published {
            let _ = fs::remove_file(&tmp);
            return Err(CacheError::io("publish cache entry", e));
        }
        self.journal_access(key);
        let evicted = if self.budget.is_some() {
            self.evict_to_budget().unwrap_or(0)
        } else {
            0
        };
        Ok(evicted)
    }

    /// Move a bad entry to `corrupt/<digest>`; `true` when the evidence
    /// was preserved (falls back to deletion so a bad entry can never be
    /// served twice either way). The quarantine directory is bounded at
    /// [`QUARANTINE_CAP`] files — oldest evidence is dropped first.
    fn quarantine(&self, key: &Digest, path: &Path) -> bool {
        let _ = fs::create_dir_all(self.corrupt_dir());
        self.prune_quarantine();
        let dest = self.corrupt_dir().join(sha256::hex(key));
        let moved = e9failpt::fail_io("cache.disk.quarantine")
            .and_then(|()| fs::rename(path, &dest));
        if moved.is_ok() {
            true
        } else {
            let _ = fs::remove_file(path);
            false
        }
    }

    /// Drop oldest quarantined files until there is room for one more
    /// under [`QUARANTINE_CAP`]. Best-effort: pruning failures only cost
    /// disk space, never correctness.
    fn prune_quarantine(&self) {
        let Ok(dir) = fs::read_dir(self.corrupt_dir()) else {
            return;
        };
        let mut files: Vec<(SystemTime, PathBuf)> = dir
            .flatten()
            .filter_map(|e| {
                let meta = e.metadata().ok()?;
                meta.is_file().then(|| {
                    (
                        meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
                        e.path(),
                    )
                })
            })
            .collect();
        if files.len() < QUARANTINE_CAP {
            return;
        }
        files.sort_by_key(|(mtime, _)| *mtime);
        let excess = files.len() + 1 - QUARANTINE_CAP;
        for (_, path) in files.into_iter().take(excess) {
            let _ = fs::remove_file(path);
        }
    }

    /// Best-effort mtime bump so scan-only eviction (no index) still
    /// approximates LRU.
    fn touch(&self, path: &Path) {
        if let Ok(f) = fs::File::options().write(true).open(path) {
            let _ = f.set_modified(SystemTime::now());
        }
    }

    /// Append one access record to the index journal (best-effort — the
    /// index is a hint, the directory scan is the ground truth).
    fn journal_access(&self, key: &Digest) {
        if let Ok(mut f) = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.index_path())
        {
            let _ = writeln!(f, "{}", sha256::hex(key));
        }
    }

    /// Read the access journal into a recency rank per digest (higher =
    /// more recent). Garbage lines — truncated appends, corruption — are
    /// skipped, never fatal.
    fn read_index(&self) -> std::collections::HashMap<String, u64> {
        let mut ranks = std::collections::HashMap::new();
        let Ok(mut f) = fs::File::open(self.index_path()) else {
            return ranks;
        };
        let mut text = String::new();
        if f.read_to_string(&mut text).is_err() {
            return ranks;
        }
        for (pos, line) in text.lines().enumerate() {
            let line = line.trim();
            if sha256::from_hex(line).is_some() {
                ranks.insert(line.to_string(), pos as u64);
            }
        }
        ranks
    }

    /// Scan `objects/` for entries (path, digest, size, mtime). I/O
    /// errors on individual entries are skipped — a half-removed file
    /// must not wedge eviction.
    fn scan(&self) -> Result<Vec<ScanEntry>, CacheError> {
        let mut out = Vec::new();
        let top = match fs::read_dir(self.objects_dir()) {
            Ok(d) => d,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(CacheError::io("scan objects dir", e)),
        };
        for fan in top.flatten() {
            let fan_name = fan.file_name().to_string_lossy().into_owned();
            let Ok(entries) = fs::read_dir(fan.path()) else {
                continue;
            };
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if name.starts_with('.') {
                    continue; // staging droppings
                }
                let Ok(meta) = entry.metadata() else {
                    continue;
                };
                if !meta.is_file() {
                    continue;
                }
                out.push(ScanEntry {
                    path: entry.path(),
                    digest_hex: format!("{fan_name}{name}"),
                    len: meta.len(),
                    mtime: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
                });
            }
        }
        Ok(out)
    }

    /// Total `(entries, bytes)` currently stored.
    ///
    /// # Errors
    ///
    /// Scan failures.
    pub fn usage(&self) -> Result<(u64, u64), CacheError> {
        let scan = self.scan()?;
        Ok((scan.len() as u64, scan.iter().map(|e| e.len).sum()))
    }

    /// Evict least-recently-used entries until total object bytes fit the
    /// budget. Returns the number of entries removed.
    ///
    /// Victim order: entries absent from the index journal first (oldest
    /// mtime first), then journaled entries by access rank. Holds the
    /// advisory directory lock; if another process holds it, the pass is
    /// skipped (that process is already evicting).
    ///
    /// # Errors
    ///
    /// Scan failures. Individual removals are best-effort.
    pub fn evict_to_budget(&self) -> Result<u64, CacheError> {
        let Some(budget) = self.budget else {
            return Ok(0);
        };
        e9failpt::fail_io("cache.disk.evict").map_err(|e| CacheError::io("evict pass", e))?;
        let Some(_lock) = DirLock::try_acquire(&self.lock_path(), self.lock_ttl) else {
            return Ok(0);
        };
        let mut entries = self.scan()?;
        let mut total: u64 = entries.iter().map(|e| e.len).sum();
        if total <= budget {
            return Ok(0);
        }
        let ranks = self.read_index();
        // Oldest victims first: unranked by mtime, then ranked by recency.
        entries.sort_by_key(|e| (ranks.get(&e.digest_hex).copied(), e.mtime));
        let mut removed = 0u64;
        let mut survivors = Vec::new();
        let mut victims = entries.into_iter();
        for entry in victims.by_ref() {
            if total <= budget {
                survivors.push(entry);
                break;
            }
            if fs::remove_file(&entry.path).is_ok() {
                total -= entry.len;
                removed += 1;
            }
        }
        survivors.extend(victims);
        if removed > 0 {
            self.rewrite_index(&survivors, &ranks);
        }
        Ok(removed)
    }

    /// Compact the index journal to the surviving entries, in recency
    /// order (atomic temp + rename; best-effort).
    fn rewrite_index(&self, survivors: &[ScanEntry], ranks: &std::collections::HashMap<String, u64>) {
        let mut ordered: Vec<&ScanEntry> = survivors.iter().collect();
        ordered.sort_by_key(|e| (ranks.get(&e.digest_hex).copied(), e.mtime));
        let mut text = String::new();
        for e in ordered {
            text.push_str(&e.digest_hex);
            text.push('\n');
        }
        let tmp = self.root.join(format!(".index.{}.tmp", std::process::id()));
        let staged: io::Result<()> = (|| {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()
        })();
        if staged.is_ok() {
            let _ = fs::rename(&tmp, self.index_path());
        } else {
            let _ = fs::remove_file(&tmp);
        }
    }

    /// Remove every stored object and the index. Returns entries removed.
    ///
    /// # Errors
    ///
    /// Scan failures; individual removals are best-effort.
    pub fn clear(&self) -> Result<u64, CacheError> {
        let _lock = DirLock::try_acquire(&self.lock_path(), self.lock_ttl);
        let mut removed = 0u64;
        for entry in self.scan()? {
            if fs::remove_file(&entry.path).is_ok() {
                removed += 1;
            }
        }
        let _ = fs::remove_file(self.index_path());
        Ok(removed)
    }
}

/// Verify one raw entry file in place; `Err(reason)` on any mismatch.
/// Returns `Ok(())` rather than the payload so the caller can serve the
/// bytes out of the buffer it already owns.
fn decode_entry(raw: &[u8]) -> Result<(), String> {
    if raw.is_empty() {
        return Err("zero-length entry".into());
    }
    if raw.len() < HEADER_LEN {
        return Err(format!("truncated header ({} bytes)", raw.len()));
    }
    if &raw[..8] != MAGIC {
        return Err("bad magic".into());
    }
    let stored: Digest = raw[8..HEADER_LEN].try_into().expect("32-byte checksum");
    let payload = &raw[HEADER_LEN..];
    let actual = sha256::digest(payload);
    if actual != stored {
        return Err(format!(
            "checksum mismatch (stored {}, computed {})",
            sha256::hex(&stored),
            sha256::hex(&actual)
        ));
    }
    Ok(())
}

/// A best-effort advisory directory lock: an `O_EXCL`-created lock file,
/// stolen when older than the TTL (a crashed holder must not wedge
/// eviction forever). Held for the duration of an eviction/clear pass.
#[derive(Debug)]
struct DirLock {
    path: PathBuf,
}

impl DirLock {
    fn try_acquire(path: &Path, ttl: Duration) -> Option<DirLock> {
        for _ in 0..2 {
            match fs::OpenOptions::new().write(true).create_new(true).open(path) {
                Ok(mut f) => {
                    let _ = write!(f, "{}", std::process::id());
                    return Some(DirLock {
                        path: path.to_path_buf(),
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let stale = fs::metadata(path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|m| SystemTime::now().duration_since(m).ok())
                        .is_some_and(|age| age > ttl);
                    if stale {
                        let _ = fs::remove_file(path);
                        continue; // retry the create_new
                    }
                    return None; // live holder — skip this pass
                }
                Err(_) => return None,
            }
        }
        None
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::digest;

    fn tmproot(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("e9cache-disk-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn put_get_round_trip() {
        let root = tmproot("roundtrip");
        let store = DiskStore::open(&root, None).unwrap();
        let key = digest(b"key");
        assert_eq!(store.get(&key).unwrap(), None);
        store.put(&key, b"payload bytes").unwrap();
        assert_eq!(store.get(&key).unwrap().unwrap()[..], b"payload bytes"[..]);
        // Fan-out layout: objects/ab/<62 hex>.
        let hex = sha256::hex(&key);
        assert!(root.join("objects").join(&hex[..2]).join(&hex[2..]).exists());
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn corrupt_entry_is_typed_error_and_quarantined() {
        let root = tmproot("corrupt");
        let store = DiskStore::open(&root, None).unwrap();
        let key = digest(b"victim");
        store.put(&key, b"good bytes").unwrap();
        let path = store.object_path(&key);
        // Flip one payload byte.
        let mut raw = fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        fs::write(&path, &raw).unwrap();
        match store.get(&key) {
            Err(CacheError::Corrupt {
                digest: d,
                quarantined,
                ..
            }) => {
                assert_eq!(d, sha256::hex(&key));
                assert!(quarantined);
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // The entry is gone from objects/ and preserved in corrupt/.
        assert!(!path.exists());
        assert!(root.join("corrupt").join(sha256::hex(&key)).exists());
        // The store stays serviceable: a re-put re-publishes cleanly.
        assert_eq!(store.get(&key).unwrap(), None);
        store.put(&key, b"good bytes").unwrap();
        assert_eq!(store.get(&key).unwrap().unwrap()[..], b"good bytes"[..]);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn zero_length_and_truncated_entries_are_corrupt() {
        let root = tmproot("trunc");
        let store = DiskStore::open(&root, None).unwrap();
        let key = digest(b"t");
        store.put(&key, b"0123456789").unwrap();
        let path = store.object_path(&key);
        for bad in [Vec::new(), b"E9CACHE1".to_vec(), fs::read(&path).unwrap()[..41].to_vec()] {
            store.put(&key, b"0123456789").unwrap();
            fs::write(&path, &bad).unwrap();
            assert!(matches!(store.get(&key), Err(CacheError::Corrupt { .. })), "bad len {}", bad.len());
        }
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn eviction_respects_budget_and_access_order() {
        let root = tmproot("evict");
        // Budget fits two ~100-byte entries (plus headers).
        let store = DiskStore::open(&root, Some(300)).unwrap();
        let (k1, k2, k3) = (digest(b"1"), digest(b"2"), digest(b"3"));
        store.put(&k1, &[1u8; 100]).unwrap();
        store.put(&k2, &[2u8; 100]).unwrap();
        // Touch k1 so k2 is the LRU victim when k3 arrives.
        assert!(store.get(&k1).unwrap().is_some());
        store.put(&k3, &[3u8; 100]).unwrap();
        let (entries, bytes) = store.usage().unwrap();
        assert!(bytes <= 300, "budget exceeded: {bytes}");
        assert_eq!(entries, 2);
        assert!(store.get(&k2).unwrap().is_none(), "LRU entry survived");
        assert!(store.get(&k1).unwrap().is_some());
        assert!(store.get(&k3).unwrap().is_some());
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn garbage_index_degrades_to_mtime_order() {
        let root = tmproot("badindex");
        let store = DiskStore::open(&root, Some(150)).unwrap();
        let (k1, k2) = (digest(b"a"), digest(b"b"));
        store.put(&k1, &[1u8; 100]).unwrap();
        fs::write(root.join("index"), b"not hex at all\n\x00\x01garbage\n").unwrap();
        store.put(&k2, &[2u8; 100]).unwrap();
        // Over budget → one of them was evicted, no panic, store works.
        let (entries, bytes) = store.usage().unwrap();
        assert_eq!(entries, 1);
        assert!(bytes <= 150);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn quarantine_stays_bounded_under_repeated_corruption() {
        let root = tmproot("qcap");
        let store = DiskStore::open(&root, None).unwrap();
        // Sustained corruption — more bad entries than the cap.
        for i in 0..QUARANTINE_CAP + 8 {
            let key = digest(&(i as u64).to_le_bytes());
            store.put(&key, b"payload").unwrap();
            let path = store.object_path(&key);
            let mut raw = fs::read(&path).unwrap();
            let last = raw.len() - 1;
            raw[last] ^= 0xFF;
            fs::write(&path, &raw).unwrap();
            assert!(matches!(store.get(&key), Err(CacheError::Corrupt { .. })));
            let kept = fs::read_dir(store.corrupt_dir()).unwrap().flatten().count();
            assert!(kept <= QUARANTINE_CAP, "quarantine grew past the cap: {kept}");
        }
        // Evidence is still being kept, just bounded.
        let kept = fs::read_dir(store.corrupt_dir()).unwrap().flatten().count();
        assert!(kept > 0);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn clear_removes_everything() {
        let root = tmproot("clear");
        let store = DiskStore::open(&root, None).unwrap();
        store.put(&digest(b"x"), b"x").unwrap();
        store.put(&digest(b"y"), b"y").unwrap();
        assert_eq!(store.clear().unwrap(), 2);
        assert_eq!(store.usage().unwrap(), (0, 0));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn stale_lock_is_stolen() {
        let root = tmproot("lock");
        let store = DiskStore::open(&root, Some(50)).unwrap();
        // Plant a lock file dated far in the past.
        fs::write(root.join("lock"), b"dead").unwrap();
        let old = SystemTime::now() - Duration::from_secs(3600);
        fs::File::options()
            .write(true)
            .open(root.join("lock"))
            .unwrap()
            .set_modified(old)
            .unwrap();
        store.put(&digest(b"x"), &[0u8; 100]).unwrap();
        store.put(&digest(b"y"), &[0u8; 100]).unwrap();
        // Eviction stole the stale lock and ran.
        let (_, bytes) = store.usage().unwrap();
        assert!(bytes <= 150, "stale lock blocked eviction");
        fs::remove_dir_all(&root).ok();
    }
}
