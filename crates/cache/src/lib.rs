//! `e9cache` — content-addressed cache for finished rewrite artifacts.
//!
//! The rewrite pipeline is deterministic (byte-identical output for a
//! given input since PR 1, enforced across `--jobs` since PR 4), which
//! makes finished rewrites safely addressable by a digest of their
//! inputs: `(input ELF bytes, patch batch, RewriteConfig, protocol/format
//! version)`. This crate provides the storage half of that bargain — the
//! key derivation lives in `e9proto::cachekey`, next to the wire codec it
//! reuses.
//!
//! Two tiers, checked in order:
//!
//! 1. **Memory** ([`mem::MemLru`]): a bytes-capped LRU behind an interior
//!    lock, shared by all daemon connection threads.
//! 2. **Disk** ([`disk::DiskStore`]): a `objects/ab/cdef…` CAS with
//!    atomic publish, read-time checksum verification, quarantine of
//!    corrupt entries, and crash-tolerant size-budgeted eviction.
//!
//! Failures in either tier *degrade* — a corrupt or unreadable entry is
//! counted and treated as a miss so the caller falls back to a cold
//! rewrite — they never panic and never serve wrong bytes.
//!
//! Entries are either positive (encoded emit-reply bytes) or *negative*:
//! a request that deterministically fails keeps failing, so the original
//! typed error is cached and replayed without re-running the rewriter.
//!
//! # The warm path is copy-free
//!
//! A warm hit is only worth taking when `lookup` is strictly cheaper than
//! recomputing, so payload bytes are never copied on the read path: both
//! tiers traffic in [`Blob`] — a reference-counted buffer plus a range —
//! and a hit hands the caller a view into the very allocation the entry
//! already lives in (the LRU's buffer, or the single `fs::read` buffer a
//! disk promotion produced). `tests/alloc.rs` pins this with a counting
//! allocator.
//!
//! # Bypass: tiny rewrites skip the cache
//!
//! For small inputs recomputing the rewrite is provably cheaper than
//! keying it (hash + lookup + decode), so [`Cache::should_bypass`]
//! implements a size threshold below which callers skip the cache
//! entirely — no key is derived, nothing is stored, not even negative
//! entries. The base threshold defaults to [`DEFAULT_BYPASS_BYTES`]
//! (measured break-even on the bench ladder, see
//! `results/bench_cache.json`) and adapts to the observed hit rate: a
//! cache that is mostly missing pushes the threshold up (stay out of the
//! way), one that is mostly hitting pulls it down (engage smaller
//! inputs). Decisions are counted in [`CacheStats::bypasses`] and the
//! effective threshold is reported as [`CacheStats::bypass_threshold`].

pub mod breaker;
pub mod disk;
pub mod mem;
pub mod sha256;
pub mod tree;

pub use breaker::{Breaker, BreakerStats};
pub use sha256::{digest, Digest, Sha256};

use std::fmt;
use std::ops::Deref;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Version of the entry payload encoding *and* of the key derivation —
/// bumped together whenever either changes, so stale stores can never be
/// misread (a bump changes every key; old objects simply age out).
///
/// v2: positive payloads switched from canonical-JSON emit replies to the
/// compact binary codec (`EmitReply::encode_bin`), and the key's batch
/// part from canonical JSON to the same binary framing.
pub const FORMAT_VERSION: u64 = 2;

/// Default in-memory tier budget (64 MiB).
pub const DEFAULT_MEM_BYTES: usize = 64 << 20;

/// Default bypass threshold: inputs smaller than this skip the cache.
/// Derived from the measured break-even on the bench size ladder (a warm
/// hit pays ~1 GiB/s hashing plus a lookup; a tiny rewrite recomputes in
/// tens of microseconds, which at 128 KiB is the cheaper side).
pub const DEFAULT_BYPASS_BYTES: u64 = 128 << 10;

/// Decided lookups (hits + misses) required before the adaptive rule
/// trusts the observed hit rate enough to move the threshold.
const BYPASS_ADAPT_MIN_DECIDED: u64 = 32;

/// A typed cache failure. The cache is an accelerator, so callers treat
/// every variant as "fall back to a cold rewrite" — but the variants are
/// distinct so fault campaigns can assert *which* degradation happened.
#[derive(Debug)]
pub enum CacheError {
    /// Transport-level I/O failure (permissions, disk full, …).
    Io {
        /// What the store was doing when it failed.
        context: &'static str,
        source: std::io::Error,
    },
    /// An on-disk entry failed verification and was quarantined.
    Corrupt {
        /// Hex digest of the *key* (the CAS name), not of the payload.
        digest: String,
        reason: String,
        /// Whether the evidence was preserved under `corrupt/` (`false`
        /// means the rename failed and the entry was deleted instead).
        quarantined: bool,
    },
}

impl CacheError {
    fn io(context: &'static str, source: std::io::Error) -> CacheError {
        CacheError::Io { context, source }
    }
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Io { context, source } => write!(f, "cache I/O: {context}: {source}"),
            CacheError::Corrupt {
                digest,
                reason,
                quarantined,
            } => write!(
                f,
                "cache entry {digest} corrupt ({reason}){}",
                if *quarantined {
                    ", quarantined"
                } else {
                    ", removed"
                }
            ),
        }
    }
}

impl std::error::Error for CacheError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CacheError::Io { source, .. } => Some(source),
            CacheError::Corrupt { .. } => None,
        }
    }
}

/// A shared, immutable byte range: a reference-counted backing buffer
/// plus `[start, end)`. Cloning or re-slicing is O(1) and never copies
/// the payload, which is what keeps the warm hit path allocation-free —
/// the disk tier hands out a `Blob` over its single `fs::read` buffer,
/// and the memory tier shares that same buffer across every future hit.
///
/// (Deliberately backed by `Arc<Vec<u8>>` rather than `Arc<[u8]>`:
/// converting a `Vec` into an `Arc<[u8]>` *copies* the bytes to inline
/// them next to the refcounts, exactly the reallocation this type
/// exists to avoid.)
#[derive(Clone)]
pub struct Blob {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Blob {
    /// Take ownership of `data` (no copy) as a full-range blob.
    pub fn from_vec(data: Vec<u8>) -> Blob {
        let end = data.len();
        Blob {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }

    /// A sub-range of this blob (relative to it); panics if out of range.
    pub fn slice(&self, start: usize, end: usize) -> Blob {
        assert!(start <= end && self.start + end <= self.end);
        Blob {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Everything from `offset` (relative) to the end.
    pub fn tail(&self, offset: usize) -> Blob {
        self.slice(offset, self.len())
    }

    /// Bytes in the visible range.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the visible range is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl Deref for Blob {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Blob {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for Blob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Blob({} bytes)", self.len())
    }
}

impl PartialEq for Blob {
    fn eq(&self, other: &Blob) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Blob {}

/// A decoded cache entry, as written: owned payload bytes. This is the
/// *store*-side type; the read path returns [`Hit`] so positive payloads
/// stay inside their original allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Entry {
    /// A finished rewrite: encoded emit-reply bytes.
    Ok(Vec<u8>),
    /// A deterministic failure: the typed error the rewrite produced,
    /// replayed on every hit so known-bad requests short-circuit.
    Negative {
        /// JSON-RPC error code (e.g. `e9proto::msg::code::REWRITE`).
        code: i64,
        message: String,
    },
}

impl Entry {
    /// Serialize to the stored payload form: `b'P' ‖ bytes` for a
    /// positive entry, `b'N' ‖ code(LE) ‖ message(UTF-8)` for a negative.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Entry::Ok(bytes) => {
                let mut out = Vec::with_capacity(1 + bytes.len());
                out.push(b'P');
                out.extend_from_slice(bytes);
                out
            }
            Entry::Negative { code, message } => {
                let mut out = Vec::with_capacity(9 + message.len());
                out.push(b'N');
                out.extend_from_slice(&code.to_le_bytes());
                out.extend_from_slice(message.as_bytes());
                out
            }
        }
    }

    /// Inverse of [`encode`](Entry::encode); `None` on any malformed
    /// payload (the caller treats that as a corrupt entry). Copies the
    /// payload — hot-path readers use [`Cache::lookup`]'s [`Hit`]
    /// instead.
    pub fn decode(raw: &[u8]) -> Option<Entry> {
        match raw.split_first()? {
            (b'P', rest) => Some(Entry::Ok(rest.to_vec())),
            (b'N', rest) if rest.len() >= 8 => {
                let code = i64::from_le_bytes(rest[..8].try_into().ok()?);
                let message = std::str::from_utf8(&rest[8..]).ok()?.to_string();
                Some(Entry::Negative { code, message })
            }
            _ => None,
        }
    }
}

/// The read-path view of a cache hit. A positive hit is a zero-copy
/// [`Blob`] over the stored payload (tag byte already stripped); a
/// negative hit decodes the (small) replayed error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Hit {
    /// A finished rewrite's encoded emit-reply bytes, in place.
    Payload(Blob),
    /// A replayed deterministic failure.
    Negative { code: i64, message: String },
}

impl Hit {
    /// Decode the tagged payload `blob` without copying positive bytes.
    fn decode(blob: &Blob) -> Option<Hit> {
        match blob.first()? {
            b'P' => Some(Hit::Payload(blob.tail(1))),
            b'N' if blob.len() >= 9 => {
                let code = i64::from_le_bytes(blob[1..9].try_into().ok()?);
                let message = std::str::from_utf8(&blob[9..]).ok()?.to_string();
                Some(Hit::Negative { code, message })
            }
            _ => None,
        }
    }

    /// Copy out into an owned [`Entry`] (tests, fault campaigns).
    pub fn to_entry(&self) -> Entry {
        match self {
            Hit::Payload(blob) => Entry::Ok(blob.to_vec()),
            Hit::Negative { code, message } => Entry::Negative {
                code: *code,
                message: message.clone(),
            },
        }
    }
}

/// How to build a [`Cache`].
#[derive(Debug, Clone, Default)]
pub struct CacheConfig {
    /// Root of the on-disk tier; `None` = memory-only.
    pub dir: Option<PathBuf>,
    /// Memory-tier byte budget; `None` = [`DEFAULT_MEM_BYTES`].
    pub mem_bytes: Option<usize>,
    /// Disk-tier byte budget; `None` = unbounded.
    pub disk_bytes: Option<u64>,
    /// Base bypass threshold in input bytes; `None` =
    /// [`DEFAULT_BYPASS_BYTES`], `Some(0)` disables bypassing (every
    /// input engages the cache — tests and benchmarks of the engaged
    /// path use this).
    pub bypass_bytes: Option<u64>,
}

/// A point-in-time snapshot of the cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub mem_hits: u64,
    pub disk_hits: u64,
    pub negative_hits: u64,
    pub misses: u64,
    pub stores: u64,
    pub mem_evictions: u64,
    pub disk_evictions: u64,
    pub verify_failures: u64,
    /// Degradations other than verification failures (I/O errors,
    /// undecodable payloads) — every one fell back to a cold rewrite.
    pub errors: u64,
    pub mem_entries: u64,
    pub mem_bytes: u64,
    /// Requests that skipped the cache because the input was below the
    /// bypass threshold.
    pub bypasses: u64,
    /// The effective (hit-rate-adapted) bypass threshold at snapshot
    /// time, in input bytes; 0 means bypassing is disabled.
    pub bypass_threshold: u64,
    /// True while the disk tier's circuit breaker is open (the tier is
    /// being skipped and the cache is effectively memory-only).
    pub disk_breaker_open: bool,
    /// Closed → open transitions of the disk-tier breaker.
    pub disk_breaker_trips: u64,
    /// Disk operations skipped while the breaker was open.
    pub disk_breaker_fast_fails: u64,
    /// Probe writes admitted while the breaker was open.
    pub disk_breaker_probes: u64,
    /// Open → closed transitions (successful probes).
    pub disk_breaker_recoveries: u64,
}

impl CacheStats {
    /// One-line human summary, in the `PatchStats::summary` style.
    pub fn summary(&self) -> String {
        format!(
            "cache: {} hits ({} mem, {} disk, {} negative), {} misses, {} bypasses (threshold {} B), {} stores, {} evictions ({} mem, {} disk), {} verify failures, {} errors, breaker {} ({} trips, {} fast-fails, {} probes, {} recoveries)",
            self.hits,
            self.mem_hits,
            self.disk_hits,
            self.negative_hits,
            self.misses,
            self.bypasses,
            self.bypass_threshold,
            self.stores,
            self.mem_evictions + self.disk_evictions,
            self.mem_evictions,
            self.disk_evictions,
            self.verify_failures,
            self.errors,
            if self.disk_breaker_open { "open" } else { "closed" },
            self.disk_breaker_trips,
            self.disk_breaker_fast_fails,
            self.disk_breaker_probes,
            self.disk_breaker_recoveries,
        )
    }
}

#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    negative_hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    disk_evictions: AtomicU64,
    verify_failures: AtomicU64,
    errors: AtomicU64,
    bypasses: AtomicU64,
}

fn tick(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

/// The two-tier cache. Interior-locked: one instance (usually in an
/// [`Arc`]) serves every connection thread of a daemon concurrently.
#[derive(Debug)]
pub struct Cache {
    mem: Mutex<mem::MemLru>,
    disk: Option<disk::DiskStore>,
    counters: Counters,
    /// Base bypass threshold (0 = bypassing disabled).
    bypass_base: u64,
    /// Disk-tier circuit breaker (only consulted when `disk` exists).
    breaker: breaker::Breaker,
}

impl Cache {
    /// Build a cache per `config`.
    ///
    /// # Errors
    ///
    /// Disk-tier directory creation failures.
    pub fn open(config: &CacheConfig) -> Result<Cache, CacheError> {
        let disk = match &config.dir {
            Some(dir) => Some(disk::DiskStore::open(dir, config.disk_bytes)?),
            None => None,
        };
        Ok(Cache {
            mem: Mutex::new(mem::MemLru::new(
                config.mem_bytes.unwrap_or(DEFAULT_MEM_BYTES),
            )),
            disk,
            counters: Counters::default(),
            bypass_base: config.bypass_bytes.unwrap_or(DEFAULT_BYPASS_BYTES),
            breaker: breaker::Breaker::new(),
        })
    }

    /// A memory-only cache with the default budget and bypass threshold
    /// (`--cache-dir` omitted on the daemon).
    pub fn in_memory() -> Cache {
        Cache::open(&CacheConfig::default()).expect("memory-only cache cannot fail")
    }

    /// A memory-only cache with bypassing disabled — tests and benches
    /// that drive tiny synthetic inputs through the engaged path.
    pub fn in_memory_no_bypass() -> Cache {
        Cache::open(&CacheConfig {
            bypass_bytes: Some(0),
            ..CacheConfig::default()
        })
        .expect("memory-only cache cannot fail")
    }

    /// The cache must stay serviceable even if a connection thread
    /// panicked while holding the lock — entries are immutable once
    /// inserted, so the map is never observably half-written.
    fn mem(&self) -> MutexGuard<'_, mem::MemLru> {
        self.mem.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Should a request over `input_len` bytes skip the cache entirely?
    ///
    /// Below the effective threshold recomputing is cheaper than keying,
    /// so the caller runs cold without deriving a key or storing anything
    /// (including negative entries). A `true` answer is counted.
    pub fn should_bypass(&self, input_len: u64) -> bool {
        let bypass = input_len < self.bypass_threshold();
        if bypass {
            tick(&self.counters.bypasses);
        }
        bypass
    }

    /// The effective bypass threshold: the configured base, scaled by the
    /// observed hit rate once enough lookups have been decided. A cache
    /// that is mostly hitting halves the threshold (engaging smaller
    /// inputs pays); one that is mostly missing quadruples it (keying is
    /// a pure tax). 0 when bypassing is disabled.
    pub fn bypass_threshold(&self) -> u64 {
        let base = self.bypass_base;
        if base == 0 {
            return 0;
        }
        let hits = self.counters.hits.load(Ordering::Relaxed);
        let misses = self.counters.misses.load(Ordering::Relaxed);
        let decided = hits + misses;
        if decided < BYPASS_ADAPT_MIN_DECIDED {
            return base;
        }
        if hits * 2 >= decided {
            base / 2 // ≥ 50% hit rate
        } else if hits * 8 < decided {
            base * 4 // < 12.5% hit rate
        } else {
            base
        }
    }

    /// Look up `key`, promoting disk hits into the memory tier.
    ///
    /// Positive hits are returned as a zero-copy [`Blob`] view of the
    /// stored payload. Never fails: corrupt entries (already quarantined
    /// by the disk tier) and I/O errors are counted and reported as a
    /// miss so the caller runs the rewrite cold.
    pub fn lookup(&self, key: &Digest) -> Option<Hit> {
        if let Some(payload) = self.mem().get(key) {
            return self.decoded_hit(key, &payload, true);
        }
        let Some(disk) = self.disk.as_ref() else {
            tick(&self.counters.misses);
            return None;
        };
        if self.breaker.admit(breaker::OpKind::Read) == breaker::Admit::Skip {
            // Breaker open: memory-only mode, fast miss without a
            // syscall. (Reads never probe — only a write success is
            // evidence of recovery; see the breaker module docs.)
            tick(&self.counters.misses);
            return None;
        }
        match disk.get(key) {
            Ok(Some(payload)) => {
                self.breaker.record_ok(breaker::OpKind::Read);
                // Promotion shares the read buffer: the LRU clone below
                // is a refcount bump, not a copy.
                self.mem().insert(*key, payload.clone());
                self.decoded_hit(key, &payload, false)
            }
            Ok(None) => {
                self.breaker.record_ok(breaker::OpKind::Read);
                tick(&self.counters.misses);
                None
            }
            Err(CacheError::Corrupt { .. }) => {
                // Data damage, not environment damage: the read itself
                // worked, so the breaker is not fed.
                tick(&self.counters.verify_failures);
                tick(&self.counters.misses);
                None
            }
            Err(CacheError::Io { .. }) => {
                self.breaker.record_io_error();
                tick(&self.counters.errors);
                tick(&self.counters.misses);
                None
            }
        }
    }

    /// [`lookup`](Cache::lookup), copied out into an owned [`Entry`] —
    /// for tests and fault campaigns that want value semantics.
    pub fn lookup_entry(&self, key: &Digest) -> Option<Entry> {
        self.lookup(key).map(|hit| hit.to_entry())
    }

    /// Decode a checksum-verified payload; an undecodable one (possible
    /// only if encoder and decoder disagree) is purged from memory and
    /// counted as an error-miss so the caller recomputes cold.
    fn decoded_hit(&self, key: &Digest, payload: &Blob, from_mem: bool) -> Option<Hit> {
        match Hit::decode(payload) {
            Some(hit) => {
                tick(&self.counters.hits);
                if from_mem {
                    tick(&self.counters.mem_hits);
                } else {
                    tick(&self.counters.disk_hits);
                }
                if matches!(hit, Hit::Negative { .. }) {
                    tick(&self.counters.negative_hits);
                }
                Some(hit)
            }
            None => {
                self.mem().remove(key);
                tick(&self.counters.errors);
                tick(&self.counters.misses);
                None
            }
        }
    }

    /// Store `entry` under `key` in both tiers. Disk failures are
    /// counted, not propagated — a cache store must never fail a rewrite
    /// that already succeeded.
    pub fn put(&self, key: &Digest, entry: &Entry) {
        let payload = Blob::from_vec(entry.encode());
        self.mem().insert(*key, payload.clone());
        tick(&self.counters.stores);
        if let Some(disk) = &self.disk {
            if self.breaker.admit(breaker::OpKind::Write) == breaker::Admit::Skip {
                return; // memory-only mode; the probe cadence lets one through
            }
            match disk.put(key, &payload) {
                Ok(evicted) => {
                    self.breaker.record_ok(breaker::OpKind::Write);
                    self.counters
                        .disk_evictions
                        .fetch_add(evicted, Ordering::Relaxed);
                }
                Err(CacheError::Io { .. }) => {
                    self.breaker.record_io_error();
                    tick(&self.counters.errors);
                }
                Err(_) => tick(&self.counters.errors),
            }
        }
    }

    /// Drop every entry in both tiers; returns disk entries removed.
    pub fn clear(&self) -> u64 {
        self.mem().clear();
        match &self.disk {
            Some(disk) => disk.clear().unwrap_or_else(|_| {
                tick(&self.counters.errors);
                0
            }),
            None => 0,
        }
    }

    /// Whether a disk tier is configured.
    pub fn has_disk(&self) -> bool {
        self.disk.is_some()
    }

    /// The disk tier's circuit breaker (closed and idle when no disk
    /// tier is configured). Exposed so tests and fault campaigns can
    /// assert the trip/probe/recover cycle directly.
    pub fn disk_breaker(&self) -> &breaker::Breaker {
        &self.breaker
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        let c = &self.counters;
        let (mem_entries, mem_bytes, mem_evictions) = {
            let mem = self.mem();
            (mem.len() as u64, mem.bytes() as u64, mem.evictions())
        };
        let breaker = self.breaker.stats();
        CacheStats {
            hits: c.hits.load(Ordering::Relaxed),
            mem_hits: c.mem_hits.load(Ordering::Relaxed),
            disk_hits: c.disk_hits.load(Ordering::Relaxed),
            negative_hits: c.negative_hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            stores: c.stores.load(Ordering::Relaxed),
            mem_evictions,
            disk_evictions: c.disk_evictions.load(Ordering::Relaxed),
            verify_failures: c.verify_failures.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
            mem_entries,
            mem_bytes,
            bypasses: c.bypasses.load(Ordering::Relaxed),
            bypass_threshold: self.bypass_threshold(),
            disk_breaker_open: breaker.open,
            disk_breaker_trips: breaker.trips,
            disk_breaker_fast_fails: breaker.fast_fails,
            disk_breaker_probes: breaker.probes,
            disk_breaker_recoveries: breaker.recoveries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("e9cache-lib-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn entry_encoding_round_trips() {
        let pos = Entry::Ok(b"reply bytes".to_vec());
        assert_eq!(Entry::decode(&pos.encode()), Some(pos));
        let neg = Entry::Negative {
            code: -2,
            message: "no tactic admits site".into(),
        };
        assert_eq!(Entry::decode(&neg.encode()), Some(neg));
        assert_eq!(Entry::decode(b""), None);
        assert_eq!(Entry::decode(b"X???"), None);
        assert_eq!(Entry::decode(b"N\x01\x02"), None); // short code
    }

    #[test]
    fn blob_slicing_is_views_not_copies() {
        let blob = Blob::from_vec(b"0123456789".to_vec());
        let mid = blob.slice(2, 7);
        assert_eq!(&mid[..], b"23456");
        assert_eq!(&mid.tail(3)[..], b"56");
        assert_eq!(mid.len(), 5);
        // The backing Arc is shared, not duplicated.
        assert!(Arc::ptr_eq(&blob.data, &mid.data));
    }

    #[test]
    fn memory_only_lookup_put_cycle() {
        let cache = Cache::in_memory();
        let key = digest(b"job");
        assert_eq!(cache.lookup(&key), None);
        cache.put(&key, &Entry::Ok(b"artifact".to_vec()));
        match cache.lookup(&key) {
            Some(Hit::Payload(blob)) => assert_eq!(&blob[..], b"artifact"),
            other => panic!("expected payload hit, got {other:?}"),
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.mem_hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.stores, 1);
        assert_eq!(stats.mem_entries, 1);
    }

    #[test]
    fn disk_tier_survives_memory_clear() {
        let dir = tmpdir("survive");
        let cache = Cache::open(&CacheConfig {
            dir: Some(dir.clone()),
            ..CacheConfig::default()
        })
        .unwrap();
        let key = digest(b"job");
        cache.put(&key, &Entry::Ok(b"artifact".to_vec()));
        cache.mem().clear();
        // Disk hit, promoted back into memory.
        assert_eq!(cache.lookup_entry(&key), Some(Entry::Ok(b"artifact".to_vec())));
        assert_eq!(cache.stats().disk_hits, 1);
        assert_eq!(cache.lookup_entry(&key), Some(Entry::Ok(b"artifact".to_vec())));
        assert_eq!(cache.stats().mem_hits, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_disk_entry_counts_verify_failure_and_misses() {
        let dir = tmpdir("corrupt");
        let cache = Cache::open(&CacheConfig {
            dir: Some(dir.clone()),
            ..CacheConfig::default()
        })
        .unwrap();
        let key = digest(b"job");
        cache.put(&key, &Entry::Ok(b"artifact".to_vec()));
        cache.mem().clear();
        let path = cache.disk.as_ref().unwrap().object_path(&key);
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x01;
        std::fs::write(&path, &raw).unwrap();
        assert_eq!(cache.lookup(&key), None);
        let stats = cache.stats();
        assert_eq!(stats.verify_failures, 1);
        assert_eq!(stats.misses, 1);
        assert!(dir.join("corrupt").exists());
        // Serviceable afterwards: re-put and hit.
        cache.put(&key, &Entry::Ok(b"artifact".to_vec()));
        cache.mem().clear();
        assert_eq!(cache.lookup_entry(&key), Some(Entry::Ok(b"artifact".to_vec())));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn negative_entries_replay_the_error() {
        let cache = Cache::in_memory();
        let key = digest(b"bad job");
        cache.put(
            &key,
            &Entry::Negative {
                code: -2,
                message: "mapping conflict".into(),
            },
        );
        match cache.lookup(&key) {
            Some(Hit::Negative { code, message }) => {
                assert_eq!(code, -2);
                assert_eq!(message, "mapping conflict");
            }
            other => panic!("expected negative hit, got {other:?}"),
        }
        assert_eq!(cache.stats().negative_hits, 1);
    }

    #[test]
    fn clear_empties_both_tiers() {
        let dir = tmpdir("clear");
        let cache = Cache::open(&CacheConfig {
            dir: Some(dir.clone()),
            ..CacheConfig::default()
        })
        .unwrap();
        cache.put(&digest(b"a"), &Entry::Ok(vec![1]));
        cache.put(&digest(b"b"), &Entry::Ok(vec![2]));
        assert_eq!(cache.clear(), 2);
        assert_eq!(cache.lookup(&digest(b"a")), None);
        assert_eq!(cache.stats().mem_entries, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bypass_threshold_defaults_and_disables() {
        let cache = Cache::in_memory();
        assert_eq!(cache.bypass_threshold(), DEFAULT_BYPASS_BYTES);
        assert!(cache.should_bypass(DEFAULT_BYPASS_BYTES - 1));
        assert!(!cache.should_bypass(DEFAULT_BYPASS_BYTES));
        assert_eq!(cache.stats().bypasses, 1);

        let off = Cache::in_memory_no_bypass();
        assert_eq!(off.bypass_threshold(), 0);
        assert!(!off.should_bypass(0));
        assert!(!off.should_bypass(1));
        assert_eq!(off.stats().bypasses, 0);
    }

    #[test]
    fn bypass_threshold_adapts_to_hit_rate() {
        // Mostly hitting: threshold halves once enough lookups decided.
        let hot = Cache::in_memory();
        let key = digest(b"hot");
        hot.put(&key, &Entry::Ok(vec![1]));
        for _ in 0..BYPASS_ADAPT_MIN_DECIDED {
            assert!(hot.lookup(&key).is_some());
        }
        assert_eq!(hot.bypass_threshold(), DEFAULT_BYPASS_BYTES / 2);

        // Mostly missing: threshold quadruples.
        let cold = Cache::in_memory();
        for i in 0..BYPASS_ADAPT_MIN_DECIDED {
            assert!(cold.lookup(&digest(&i.to_le_bytes())).is_none());
        }
        assert_eq!(cold.bypass_threshold(), DEFAULT_BYPASS_BYTES * 4);

        // Disabled stays disabled regardless of traffic.
        let off = Cache::in_memory_no_bypass();
        for i in 0..BYPASS_ADAPT_MIN_DECIDED {
            assert!(off.lookup(&digest(&i.to_le_bytes())).is_none());
        }
        assert_eq!(off.bypass_threshold(), 0);
    }

    #[test]
    fn stats_summary_mentions_every_counter_family() {
        let s = CacheStats {
            hits: 3,
            mem_hits: 2,
            disk_hits: 1,
            ..CacheStats::default()
        }
        .summary();
        for needle in ["hits", "misses", "bypasses", "stores", "evictions", "verify failures"] {
            assert!(s.contains(needle), "summary missing {needle}: {s}");
        }
    }
}
