//! `e9cache` — content-addressed cache for finished rewrite artifacts.
//!
//! The rewrite pipeline is deterministic (byte-identical output for a
//! given input since PR 1, enforced across `--jobs` since PR 4), which
//! makes finished rewrites safely addressable by a digest of their
//! inputs: `(input ELF bytes, canonical-JSON patch batch, RewriteConfig,
//! protocol/format version)`. This crate provides the storage half of
//! that bargain — the key derivation lives in `e9proto::cachekey`, next
//! to the canonical JSON codec it reuses.
//!
//! Two tiers, checked in order:
//!
//! 1. **Memory** ([`mem::MemLru`]): a bytes-capped LRU behind an interior
//!    lock, shared by all daemon connection threads.
//! 2. **Disk** ([`disk::DiskStore`]): a `objects/ab/cdef…` CAS with
//!    atomic publish, read-time checksum verification, quarantine of
//!    corrupt entries, and crash-tolerant size-budgeted eviction.
//!
//! Failures in either tier *degrade* — a corrupt or unreadable entry is
//! counted and treated as a miss so the caller falls back to a cold
//! rewrite — they never panic and never serve wrong bytes.
//!
//! Entries are either positive (the canonical-JSON emit reply bytes) or
//! *negative*: a request that deterministically fails keeps failing, so
//! the original typed error is cached and replayed without re-running
//! the rewriter.

pub mod disk;
pub mod mem;
pub mod sha256;

pub use sha256::{digest, Digest, Sha256};

use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Version of the entry payload encoding *and* of the key derivation —
/// bumped together whenever either changes, so stale stores can never be
/// misread (a bump changes every key; old objects simply age out).
pub const FORMAT_VERSION: u64 = 1;

/// Default in-memory tier budget (64 MiB).
pub const DEFAULT_MEM_BYTES: usize = 64 << 20;

/// A typed cache failure. The cache is an accelerator, so callers treat
/// every variant as "fall back to a cold rewrite" — but the variants are
/// distinct so fault campaigns can assert *which* degradation happened.
#[derive(Debug)]
pub enum CacheError {
    /// Transport-level I/O failure (permissions, disk full, …).
    Io {
        /// What the store was doing when it failed.
        context: &'static str,
        source: std::io::Error,
    },
    /// An on-disk entry failed verification and was quarantined.
    Corrupt {
        /// Hex digest of the *key* (the CAS name), not of the payload.
        digest: String,
        reason: String,
        /// Whether the evidence was preserved under `corrupt/` (`false`
        /// means the rename failed and the entry was deleted instead).
        quarantined: bool,
    },
}

impl CacheError {
    fn io(context: &'static str, source: std::io::Error) -> CacheError {
        CacheError::Io { context, source }
    }
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Io { context, source } => write!(f, "cache I/O: {context}: {source}"),
            CacheError::Corrupt {
                digest,
                reason,
                quarantined,
            } => write!(
                f,
                "cache entry {digest} corrupt ({reason}){}",
                if *quarantined {
                    ", quarantined"
                } else {
                    ", removed"
                }
            ),
        }
    }
}

impl std::error::Error for CacheError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CacheError::Io { source, .. } => Some(source),
            CacheError::Corrupt { .. } => None,
        }
    }
}

/// A decoded cache entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Entry {
    /// A finished rewrite: canonical-JSON emit-reply bytes.
    Ok(Vec<u8>),
    /// A deterministic failure: the typed error the rewrite produced,
    /// replayed on every hit so known-bad requests short-circuit.
    Negative {
        /// JSON-RPC error code (e.g. `e9proto::msg::code::REWRITE`).
        code: i64,
        message: String,
    },
}

impl Entry {
    /// Serialize to the stored payload form: `b'P' ‖ bytes` for a
    /// positive entry, `b'N' ‖ code(LE) ‖ message(UTF-8)` for a negative.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Entry::Ok(bytes) => {
                let mut out = Vec::with_capacity(1 + bytes.len());
                out.push(b'P');
                out.extend_from_slice(bytes);
                out
            }
            Entry::Negative { code, message } => {
                let mut out = Vec::with_capacity(9 + message.len());
                out.push(b'N');
                out.extend_from_slice(&code.to_le_bytes());
                out.extend_from_slice(message.as_bytes());
                out
            }
        }
    }

    /// Inverse of [`encode`](Entry::encode); `None` on any malformed
    /// payload (the caller treats that as a corrupt entry).
    pub fn decode(raw: &[u8]) -> Option<Entry> {
        match raw.split_first()? {
            (b'P', rest) => Some(Entry::Ok(rest.to_vec())),
            (b'N', rest) if rest.len() >= 8 => {
                let code = i64::from_le_bytes(rest[..8].try_into().ok()?);
                let message = std::str::from_utf8(&rest[8..]).ok()?.to_string();
                Some(Entry::Negative { code, message })
            }
            _ => None,
        }
    }
}

/// How to build a [`Cache`].
#[derive(Debug, Clone, Default)]
pub struct CacheConfig {
    /// Root of the on-disk tier; `None` = memory-only.
    pub dir: Option<PathBuf>,
    /// Memory-tier byte budget; `None` = [`DEFAULT_MEM_BYTES`].
    pub mem_bytes: Option<usize>,
    /// Disk-tier byte budget; `None` = unbounded.
    pub disk_bytes: Option<u64>,
}

/// A point-in-time snapshot of the cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub mem_hits: u64,
    pub disk_hits: u64,
    pub negative_hits: u64,
    pub misses: u64,
    pub stores: u64,
    pub mem_evictions: u64,
    pub disk_evictions: u64,
    pub verify_failures: u64,
    /// Degradations other than verification failures (I/O errors,
    /// undecodable payloads) — every one fell back to a cold rewrite.
    pub errors: u64,
    pub mem_entries: u64,
    pub mem_bytes: u64,
}

impl CacheStats {
    /// One-line human summary, in the `PatchStats::summary` style.
    pub fn summary(&self) -> String {
        format!(
            "cache: {} hits ({} mem, {} disk, {} negative), {} misses, {} stores, {} evictions ({} mem, {} disk), {} verify failures, {} errors",
            self.hits,
            self.mem_hits,
            self.disk_hits,
            self.negative_hits,
            self.misses,
            self.stores,
            self.mem_evictions + self.disk_evictions,
            self.mem_evictions,
            self.disk_evictions,
            self.verify_failures,
            self.errors,
        )
    }
}

#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    negative_hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    disk_evictions: AtomicU64,
    verify_failures: AtomicU64,
    errors: AtomicU64,
}

fn tick(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

/// The two-tier cache. Interior-locked: one instance (usually in an
/// [`Arc`]) serves every connection thread of a daemon concurrently.
#[derive(Debug)]
pub struct Cache {
    mem: Mutex<mem::MemLru>,
    disk: Option<disk::DiskStore>,
    counters: Counters,
}

impl Cache {
    /// Build a cache per `config`.
    ///
    /// # Errors
    ///
    /// Disk-tier directory creation failures.
    pub fn open(config: &CacheConfig) -> Result<Cache, CacheError> {
        let disk = match &config.dir {
            Some(dir) => Some(disk::DiskStore::open(dir, config.disk_bytes)?),
            None => None,
        };
        Ok(Cache {
            mem: Mutex::new(mem::MemLru::new(
                config.mem_bytes.unwrap_or(DEFAULT_MEM_BYTES),
            )),
            disk,
            counters: Counters::default(),
        })
    }

    /// A memory-only cache with the default budget (tests, `--cache-dir`
    /// omitted on the daemon).
    pub fn in_memory() -> Cache {
        Cache::open(&CacheConfig::default()).expect("memory-only cache cannot fail")
    }

    /// The cache must stay serviceable even if a connection thread
    /// panicked while holding the lock — entries are immutable once
    /// inserted, so the map is never observably half-written.
    fn mem(&self) -> MutexGuard<'_, mem::MemLru> {
        self.mem.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Look up `key`, promoting disk hits into the memory tier.
    ///
    /// Never fails: corrupt entries (already quarantined by the disk
    /// tier) and I/O errors are counted and reported as a miss so the
    /// caller runs the rewrite cold.
    pub fn lookup(&self, key: &Digest) -> Option<Entry> {
        if let Some(payload) = self.mem().get(key) {
            return self.decoded_hit(key, &payload, true);
        }
        let Some(disk) = self.disk.as_ref() else {
            tick(&self.counters.misses);
            return None;
        };
        match disk.get(key) {
            Ok(Some(payload)) => {
                let payload: Arc<[u8]> = payload.into();
                self.mem().insert(*key, Arc::clone(&payload));
                self.decoded_hit(key, &payload, false)
            }
            Ok(None) => {
                tick(&self.counters.misses);
                None
            }
            Err(CacheError::Corrupt { .. }) => {
                tick(&self.counters.verify_failures);
                tick(&self.counters.misses);
                None
            }
            Err(CacheError::Io { .. }) => {
                tick(&self.counters.errors);
                tick(&self.counters.misses);
                None
            }
        }
    }

    /// Decode a checksum-verified payload; an undecodable one (possible
    /// only if encoder and decoder disagree) is purged from memory and
    /// counted as an error-miss so the caller recomputes cold.
    fn decoded_hit(&self, key: &Digest, payload: &Arc<[u8]>, from_mem: bool) -> Option<Entry> {
        match Entry::decode(payload) {
            Some(entry) => {
                tick(&self.counters.hits);
                if from_mem {
                    tick(&self.counters.mem_hits);
                } else {
                    tick(&self.counters.disk_hits);
                }
                if matches!(entry, Entry::Negative { .. }) {
                    tick(&self.counters.negative_hits);
                }
                Some(entry)
            }
            None => {
                self.mem().remove(key);
                tick(&self.counters.errors);
                tick(&self.counters.misses);
                None
            }
        }
    }

    /// Store `entry` under `key` in both tiers. Disk failures are
    /// counted, not propagated — a cache store must never fail a rewrite
    /// that already succeeded.
    pub fn put(&self, key: &Digest, entry: &Entry) {
        let payload: Arc<[u8]> = entry.encode().into();
        self.mem().insert(*key, Arc::clone(&payload));
        tick(&self.counters.stores);
        if let Some(disk) = &self.disk {
            match disk.put(key, &payload) {
                Ok(evicted) => {
                    self.counters
                        .disk_evictions
                        .fetch_add(evicted, Ordering::Relaxed);
                }
                Err(_) => tick(&self.counters.errors),
            }
        }
    }

    /// Drop every entry in both tiers; returns disk entries removed.
    pub fn clear(&self) -> u64 {
        self.mem().clear();
        match &self.disk {
            Some(disk) => disk.clear().unwrap_or_else(|_| {
                tick(&self.counters.errors);
                0
            }),
            None => 0,
        }
    }

    /// Whether a disk tier is configured.
    pub fn has_disk(&self) -> bool {
        self.disk.is_some()
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        let c = &self.counters;
        let (mem_entries, mem_bytes, mem_evictions) = {
            let mem = self.mem();
            (mem.len() as u64, mem.bytes() as u64, mem.evictions())
        };
        CacheStats {
            hits: c.hits.load(Ordering::Relaxed),
            mem_hits: c.mem_hits.load(Ordering::Relaxed),
            disk_hits: c.disk_hits.load(Ordering::Relaxed),
            negative_hits: c.negative_hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            stores: c.stores.load(Ordering::Relaxed),
            mem_evictions,
            disk_evictions: c.disk_evictions.load(Ordering::Relaxed),
            verify_failures: c.verify_failures.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
            mem_entries,
            mem_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("e9cache-lib-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn entry_encoding_round_trips() {
        let pos = Entry::Ok(b"reply bytes".to_vec());
        assert_eq!(Entry::decode(&pos.encode()), Some(pos));
        let neg = Entry::Negative {
            code: -2,
            message: "no tactic admits site".into(),
        };
        assert_eq!(Entry::decode(&neg.encode()), Some(neg));
        assert_eq!(Entry::decode(b""), None);
        assert_eq!(Entry::decode(b"X???"), None);
        assert_eq!(Entry::decode(b"N\x01\x02"), None); // short code
    }

    #[test]
    fn memory_only_lookup_put_cycle() {
        let cache = Cache::in_memory();
        let key = digest(b"job");
        assert_eq!(cache.lookup(&key), None);
        cache.put(&key, &Entry::Ok(b"artifact".to_vec()));
        assert_eq!(cache.lookup(&key), Some(Entry::Ok(b"artifact".to_vec())));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.mem_hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.stores, 1);
        assert_eq!(stats.mem_entries, 1);
    }

    #[test]
    fn disk_tier_survives_memory_clear() {
        let dir = tmpdir("survive");
        let cache = Cache::open(&CacheConfig {
            dir: Some(dir.clone()),
            ..CacheConfig::default()
        })
        .unwrap();
        let key = digest(b"job");
        cache.put(&key, &Entry::Ok(b"artifact".to_vec()));
        cache.mem().clear();
        // Disk hit, promoted back into memory.
        assert_eq!(cache.lookup(&key), Some(Entry::Ok(b"artifact".to_vec())));
        assert_eq!(cache.stats().disk_hits, 1);
        assert_eq!(cache.lookup(&key), Some(Entry::Ok(b"artifact".to_vec())));
        assert_eq!(cache.stats().mem_hits, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_disk_entry_counts_verify_failure_and_misses() {
        let dir = tmpdir("corrupt");
        let cache = Cache::open(&CacheConfig {
            dir: Some(dir.clone()),
            ..CacheConfig::default()
        })
        .unwrap();
        let key = digest(b"job");
        cache.put(&key, &Entry::Ok(b"artifact".to_vec()));
        cache.mem().clear();
        let path = cache.disk.as_ref().unwrap().object_path(&key);
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x01;
        std::fs::write(&path, &raw).unwrap();
        assert_eq!(cache.lookup(&key), None);
        let stats = cache.stats();
        assert_eq!(stats.verify_failures, 1);
        assert_eq!(stats.misses, 1);
        assert!(dir.join("corrupt").exists());
        // Serviceable afterwards: re-put and hit.
        cache.put(&key, &Entry::Ok(b"artifact".to_vec()));
        cache.mem().clear();
        assert_eq!(cache.lookup(&key), Some(Entry::Ok(b"artifact".to_vec())));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn negative_entries_replay_the_error() {
        let cache = Cache::in_memory();
        let key = digest(b"bad job");
        cache.put(
            &key,
            &Entry::Negative {
                code: -2,
                message: "mapping conflict".into(),
            },
        );
        match cache.lookup(&key) {
            Some(Entry::Negative { code, message }) => {
                assert_eq!(code, -2);
                assert_eq!(message, "mapping conflict");
            }
            other => panic!("expected negative hit, got {other:?}"),
        }
        assert_eq!(cache.stats().negative_hits, 1);
    }

    #[test]
    fn clear_empties_both_tiers() {
        let dir = tmpdir("clear");
        let cache = Cache::open(&CacheConfig {
            dir: Some(dir.clone()),
            ..CacheConfig::default()
        })
        .unwrap();
        cache.put(&digest(b"a"), &Entry::Ok(vec![1]));
        cache.put(&digest(b"b"), &Entry::Ok(vec![2]));
        assert_eq!(cache.clear(), 2);
        assert_eq!(cache.lookup(&digest(b"a")), None);
        assert_eq!(cache.stats().mem_entries, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_summary_mentions_every_counter_family() {
        let s = CacheStats {
            hits: 3,
            mem_hits: 2,
            disk_hits: 1,
            ..CacheStats::default()
        }
        .summary();
        for needle in ["hits", "misses", "stores", "evictions", "verify failures"] {
            assert!(s.contains(needle), "summary missing {needle}: {s}");
        }
    }
}
