//! Circuit breaker for the disk tier.
//!
//! A disk that starts failing (ENOSPC, EROFS after a remount, a dying
//! device) would otherwise tax every request with a doomed syscall and
//! its error handling. The breaker converts that into **memory-only
//! mode**: after [`TRIP_THRESHOLD`] consecutive `CacheError::Io`
//! failures the disk tier is skipped outright (reads fast-miss, writes
//! are dropped), and every [`PROBE_INTERVAL`]-th skipped *write*
//! opportunity is let through as a probe. A successful probe write
//! closes the breaker and the tier resumes transparently.
//!
//! Two deliberate asymmetries, both driven by how disks actually fail:
//!
//! * **Only write successes reset/close.** Every environmental failure
//!   class worth degrading for (disk full, read-only remount, failing
//!   media) keeps *reads* working while *writes* fail — so a successful
//!   read proves nothing about tier health and must neither reset the
//!   consecutive-error count nor close an open breaker. Otherwise an
//!   interleaved `lookup`-miss (a successful read) between failing
//!   `put`s would keep the count at zero forever, which is exactly the
//!   disk-full scenario the breaker exists for.
//! * **Probes are writes.** While open, reads are always skipped (pure
//!   fast path); only a write opportunity can probe, because only a
//!   write success is evidence of recovery.
//!
//! Everything is count-based — no clocks — so trip, probe and recovery
//! points are deterministic functions of the operation sequence, which
//! is what lets unit tests, `e9qcheck` properties and the `e9fault io`
//! campaign pin the cycle exactly.

use std::sync::Mutex;

/// Consecutive I/O failures that trip the breaker open.
pub const TRIP_THRESHOLD: u32 = 3;

/// While open, every `PROBE_INTERVAL`-th skipped write opportunity is
/// admitted as a probe.
pub const PROBE_INTERVAL: u64 = 4;

/// Which kind of disk operation is asking for admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `get` / object reads.
    Read,
    /// `put` / publishes — the ops whose success proves tier health.
    Write,
}

/// The breaker's answer to [`Breaker::admit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Closed: run the operation normally.
    Allow,
    /// Open, but this write is the periodic re-probe: run it, and its
    /// outcome decides recovery.
    Probe,
    /// Open: skip the disk entirely (read → fast miss, write → drop).
    Skip,
}

/// A point-in-time snapshot of the breaker counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerStats {
    /// True while the disk tier is being skipped.
    pub open: bool,
    /// Closed → open transitions.
    pub trips: u64,
    /// Disk operations skipped while open (the saved doomed syscalls).
    pub fast_fails: u64,
    /// Probe writes admitted while open.
    pub probes: u64,
    /// Open → closed transitions (successful probes).
    pub recoveries: u64,
}

#[derive(Debug, Default)]
struct Inner {
    open: bool,
    consecutive_errors: u32,
    skipped_writes: u64,
    stats: BreakerStats,
}

/// The interior-locked breaker; one per [`Cache`](crate::Cache),
/// shared by every connection thread. The lock is only taken around
/// operations that were about to do file I/O anyway.
#[derive(Debug, Default)]
pub struct Breaker {
    inner: Mutex<Inner>,
}

impl Breaker {
    /// A closed breaker with zeroed counters.
    #[must_use]
    pub fn new() -> Breaker {
        Breaker::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Ask whether a disk operation of `kind` may run. Call exactly once
    /// per operation, and report the admitted operation's outcome with
    /// [`record_ok`](Breaker::record_ok) /
    /// [`record_io_error`](Breaker::record_io_error).
    pub fn admit(&self, kind: OpKind) -> Admit {
        let mut s = self.lock();
        if !s.open {
            return Admit::Allow;
        }
        match kind {
            OpKind::Read => {
                s.stats.fast_fails += 1;
                Admit::Skip
            }
            OpKind::Write => {
                s.skipped_writes += 1;
                if s.skipped_writes % PROBE_INTERVAL == 0 {
                    s.stats.probes += 1;
                    Admit::Probe
                } else {
                    s.stats.fast_fails += 1;
                    Admit::Skip
                }
            }
        }
    }

    /// An admitted operation completed without an I/O error. A write
    /// success closes an open breaker (probe recovery) and resets the
    /// consecutive-error count; a read success does neither (see the
    /// module docs for why).
    pub fn record_ok(&self, kind: OpKind) {
        if kind != OpKind::Write {
            return;
        }
        let mut s = self.lock();
        s.consecutive_errors = 0;
        if s.open {
            s.open = false;
            s.stats.open = false;
            s.stats.recoveries += 1;
            s.skipped_writes = 0;
        }
    }

    /// An admitted operation failed with `CacheError::Io`. Trips the
    /// breaker at [`TRIP_THRESHOLD`] consecutive failures; a failed
    /// probe restarts the probe pacing.
    pub fn record_io_error(&self) {
        let mut s = self.lock();
        s.consecutive_errors = s.consecutive_errors.saturating_add(1);
        if !s.open && s.consecutive_errors >= TRIP_THRESHOLD {
            s.open = true;
            s.stats.open = true;
            s.stats.trips += 1;
        }
        // Whether a pre-trip failure or a failed probe: pace the next
        // probe a full interval out.
        s.skipped_writes = 0;
    }

    /// True while the breaker is open (disk tier skipped).
    pub fn is_open(&self) -> bool {
        self.lock().open
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> BreakerStats {
        self.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_closed_below_the_threshold() {
        let b = Breaker::new();
        for _ in 0..TRIP_THRESHOLD - 1 {
            assert_eq!(b.admit(OpKind::Write), Admit::Allow);
            b.record_io_error();
        }
        assert!(!b.is_open());
        assert_eq!(b.stats().trips, 0);
    }

    #[test]
    fn write_success_resets_the_count() {
        let b = Breaker::new();
        for _ in 0..10 {
            b.record_io_error();
            b.record_io_error();
            b.record_ok(OpKind::Write); // never three in a row
        }
        assert!(!b.is_open());
    }

    #[test]
    fn read_success_does_not_reset() {
        // The disk-full shape: put fails, interleaved lookup reads
        // succeed. The breaker must still trip.
        let b = Breaker::new();
        for _ in 0..TRIP_THRESHOLD {
            b.record_ok(OpKind::Read);
            assert_eq!(b.admit(OpKind::Write), Admit::Allow);
            b.record_io_error();
        }
        assert!(b.is_open());
        assert_eq!(b.stats().trips, 1);
    }

    #[test]
    fn open_skips_reads_and_paces_write_probes() {
        let b = Breaker::new();
        for _ in 0..TRIP_THRESHOLD {
            b.record_io_error();
        }
        assert!(b.is_open());
        // Reads never probe.
        for _ in 0..16 {
            assert_eq!(b.admit(OpKind::Read), Admit::Skip);
        }
        // Writes: PROBE_INTERVAL-1 skips, then a probe.
        for _ in 0..PROBE_INTERVAL - 1 {
            assert_eq!(b.admit(OpKind::Write), Admit::Skip);
        }
        assert_eq!(b.admit(OpKind::Write), Admit::Probe);
        assert_eq!(b.stats().probes, 1);
    }

    #[test]
    fn failed_probe_restarts_pacing_successful_probe_recovers() {
        let b = Breaker::new();
        for _ in 0..TRIP_THRESHOLD {
            b.record_io_error();
        }
        // Reach the first probe and fail it.
        for _ in 0..PROBE_INTERVAL - 1 {
            assert_eq!(b.admit(OpKind::Write), Admit::Skip);
        }
        assert_eq!(b.admit(OpKind::Write), Admit::Probe);
        b.record_io_error();
        assert!(b.is_open());
        // Pacing restarted: a full interval again before the next probe.
        for _ in 0..PROBE_INTERVAL - 1 {
            assert_eq!(b.admit(OpKind::Write), Admit::Skip);
        }
        assert_eq!(b.admit(OpKind::Write), Admit::Probe);
        b.record_ok(OpKind::Write);
        assert!(!b.is_open());
        let s = b.stats();
        assert_eq!(s.recoveries, 1);
        assert_eq!(s.probes, 2);
        assert!(!s.open);
        // Fully recovered: writes admitted normally again.
        assert_eq!(b.admit(OpKind::Write), Admit::Allow);
    }

    #[test]
    fn retrip_after_recovery_counts_again() {
        let b = Breaker::new();
        for _ in 0..TRIP_THRESHOLD {
            b.record_io_error();
        }
        b.record_ok(OpKind::Write);
        for _ in 0..TRIP_THRESHOLD {
            b.record_io_error();
        }
        let s = b.stats();
        assert_eq!(s.trips, 2);
        assert_eq!(s.recoveries, 1);
        assert!(s.open);
    }
}
