//! In-tree SHA-256 (FIPS 180-4).
//!
//! The rewrite cache is keyed by a digest over untrusted, multi-megabyte
//! inputs, so the hash must be collision-resistant and dependency-free
//! (the workspace builds fully `--offline`). This is the textbook
//! algorithm: incremental block compression with a 64-byte internal
//! buffer, so a key can be derived over `(binary, batch, config)` parts
//! without concatenating them into one allocation.
//!
//! Correctness is pinned two ways: the NIST FIPS 180-4 test vectors
//! (empty, `"abc"`, the two-block message, one million `'a'`s) as unit
//! tests below, and an `e9qcheck` property (`tests/sha_props.rs`) that
//! hashing any random chunking of a message incrementally equals the
//! one-shot digest.

/// A SHA-256 digest.
pub type Digest = [u8; 32];

/// Round constants (FIPS 180-4 §4.2.2): first 32 bits of the fractional
/// parts of the cube roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state (§5.3.3): first 32 bits of the fractional parts of
/// the square roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Partial block awaiting 64 bytes.
    buf: [u8; 64],
    buf_len: usize,
    /// Total message length in bytes (messages ≥ 2^61 bytes are out of
    /// scope; the length is folded into the padding modulo 2^64 bits).
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Sha256 {
        Sha256::new()
    }
}

impl Sha256 {
    /// A fresh hasher.
    pub fn new() -> Sha256 {
        Sha256 {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb `data`. Chunking is irrelevant: any sequence of `update`
    /// calls whose concatenation equals the message yields the same
    /// digest as a single call.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len < 64 {
                // `take == rest.len()`: the data fit in the partial
                // buffer. Falling through would clobber `buf_len` with
                // the (empty) remainder length.
                return;
            }
            let block = self.buf;
            compress(&mut self.state, &block);
            self.buf_len = 0;
        }
        let mut chunks = rest.chunks_exact(64);
        for block in &mut chunks {
            compress(&mut self.state, block.try_into().expect("64-byte chunk"));
        }
        let tail = chunks.remainder();
        self.buf[..tail.len()].copy_from_slice(tail);
        self.buf_len = tail.len();
    }

    /// Pad, compress the final block(s), and return the digest.
    pub fn finish(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // 0x80 terminator, then zeros, then the 64-bit big-endian length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0x00]);
        }
        // Write the length directly — update() would recount it.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        compress(&mut self.state, &block);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }
}

/// One-shot digest of `data`.
pub fn digest(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finish()
}

fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, word) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes(word.try_into().expect("4-byte word"));
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(big_s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = big_s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Lowercase hex of a digest (the CAS file-name form).
pub fn hex(d: &Digest) -> String {
    let mut s = String::with_capacity(64);
    for b in d {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Inverse of [`hex`]; `None` unless `s` is exactly 64 hex digits.
pub fn from_hex(s: &str) -> Option<Digest> {
    if s.len() != 64 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    let mut out = [0u8; 32];
    for (i, byte) in out.iter_mut().enumerate() {
        *byte = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok()?;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hexdigest(data: &[u8]) -> String {
        hex(&digest(data))
    }

    // FIPS 180-4 test vectors (NIST CAVP "SHA256ShortMsg"/"SHA256LongMsg"
    // canonical examples).

    #[test]
    fn nist_empty_message() {
        assert_eq!(
            hexdigest(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_abc() {
        assert_eq!(
            hexdigest(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_two_block_message() {
        // 448-bit message that pads across a block boundary.
        assert_eq!(
            hexdigest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_896_bit_message() {
        assert_eq!(
            hexdigest(
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
                  hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"
            ),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn nist_million_a() {
        // The FIPS long-message vector, absorbed in deliberately awkward
        // chunk sizes (1 MiB of repeated text exercises the multi-block
        // fast path and the partial-buffer path together).
        let mut h = Sha256::new();
        let chunk = [b'a'; 997];
        let mut left = 1_000_000usize;
        while left > 0 {
            let take = left.min(chunk.len());
            h.update(&chunk[..take]);
            left -= take;
        }
        assert_eq!(
            hex(&h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..1000u32).flat_map(|i| i.to_le_bytes()).collect();
        let one = digest(&data);
        let mut h = Sha256::new();
        for chunk in data.chunks(63) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), one);
    }

    #[test]
    fn hex_round_trips() {
        let d = digest(b"round trip");
        assert_eq!(from_hex(&hex(&d)), Some(d));
        assert_eq!(from_hex("abc"), None);
        assert_eq!(from_hex(&"g".repeat(64)), None);
    }
}
