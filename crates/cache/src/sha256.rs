//! In-tree SHA-256 (FIPS 180-4), tuned for multi-megabyte inputs.
//!
//! The rewrite cache is keyed by a digest over untrusted, multi-megabyte
//! binaries, so the hash sits on the warm hot path: a slow digest makes a
//! cache *hit* lose to an uncached rewrite. Two compression back ends,
//! selected once per absorb at runtime:
//!
//! * **SHA-NI** (`sha256rnds2`/`sha256msg1`/`sha256msg2` intrinsics) when
//!   the CPU reports the `sha` feature — ~2 cycles/byte, comfortably past
//!   the 1 GiB/s budget on any machine that has the extension.
//! * A **fully unrolled scalar** fallback: all 64 rounds expanded with a
//!   rotating register assignment (no per-round array shuffling) over a
//!   precomputed message schedule.
//!
//! Both absorb whole runs of blocks per call (`compress_blocks`), so
//! `update` on a large slice does one dispatch and one buffer-management
//! pass, not one per 64-byte block.
//!
//! Correctness is pinned two ways: the NIST FIPS 180-4 test vectors
//! (empty, `"abc"`, the two-block message, one million `'a'`s) as unit
//! tests below, and an `e9qcheck` property (`tests/sha_props.rs`) that
//! hashing any random chunking of a message incrementally equals the
//! one-shot digest — which also forces the scalar and SHA-NI paths to
//! agree block-for-block.

/// A SHA-256 digest.
pub type Digest = [u8; 32];

/// Round constants (FIPS 180-4 §4.2.2): first 32 bits of the fractional
/// parts of the cube roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state (§5.3.3): first 32 bits of the fractional parts of
/// the square roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Compress every 64-byte block in `blocks` into `state`, dispatching to
/// the SHA-NI back end when available. `blocks.len()` must be a multiple
/// of 64; callers absorb as many whole blocks per call as they can so the
/// dispatch and bounds handling are paid once per slice, not per block.
fn compress_blocks(state: &mut [u32; 8], blocks: &[u8]) {
    debug_assert_eq!(blocks.len() % 64, 0);
    #[cfg(target_arch = "x86_64")]
    if shani_available() {
        // Safety: feature presence checked at runtime, length multiple of
        // 64 checked above.
        unsafe { shani::compress_blocks(state, blocks) };
        return;
    }
    for block in blocks.chunks_exact(64) {
        compress_scalar(state, block.try_into().expect("exact 64-byte chunk"));
    }
}

#[cfg(target_arch = "x86_64")]
fn shani_available() -> bool {
    use std::sync::OnceLock;
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        std::arch::is_x86_feature_detected!("sha")
            && std::arch::is_x86_feature_detected!("ssse3")
            && std::arch::is_x86_feature_detected!("sse4.1")
    })
}

/// Scalar fallback: all 64 rounds unrolled with a rotating register
/// assignment, so the working variables never move — each round writes
/// exactly two of them and the "rotation" is done by permuting macro
/// arguments at expansion time.
fn compress_scalar(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
    }
    for t in 16..64 {
        let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
        let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
        w[t] = w[t - 16]
            .wrapping_add(s0)
            .wrapping_add(w[t - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;

    // One round: h absorbs the message word, d and h are updated in
    // place; callers pass the 8 registers rotated one position per round.
    macro_rules! round {
        ($a:ident, $b:ident, $c:ident, $d:ident,
         $e:ident, $f:ident, $g:ident, $h:ident, $t:expr) => {{
            let big_s1 = $e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25);
            let ch = ($e & $f) ^ (!$e & $g);
            let t1 = $h
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(K[$t])
                .wrapping_add(w[$t]);
            let big_s0 = $a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22);
            let maj = ($a & $b) ^ ($a & $c) ^ ($b & $c);
            let t2 = big_s0.wrapping_add(maj);
            $d = $d.wrapping_add(t1);
            $h = t1.wrapping_add(t2);
        }};
    }

    // Eight rounds cover a full rotation of the register file.
    macro_rules! round8 {
        ($base:expr) => {{
            round!(a, b, c, d, e, f, g, h, $base);
            round!(h, a, b, c, d, e, f, g, $base + 1);
            round!(g, h, a, b, c, d, e, f, $base + 2);
            round!(f, g, h, a, b, c, d, e, $base + 3);
            round!(e, f, g, h, a, b, c, d, $base + 4);
            round!(d, e, f, g, h, a, b, c, $base + 5);
            round!(c, d, e, f, g, h, a, b, $base + 6);
            round!(b, c, d, e, f, g, h, a, $base + 7);
        }};
    }

    round8!(0);
    round8!(8);
    round8!(16);
    round8!(24);
    round8!(32);
    round8!(40);
    round8!(48);
    round8!(56);

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Intel SHA extensions back end. The round function runs in hardware
/// (`sha256rnds2` retires two rounds per instruction) and the message
/// schedule is produced by `sha256msg1`/`sha256msg2` with one `palignr`
/// fix-up — the standard single-block dataflow, iterated over the whole
/// slice so the ABEF/CDGH state registers stay live across blocks.
#[cfg(target_arch = "x86_64")]
mod shani {
    use super::K;
    use std::arch::x86_64::*;

    /// Next four schedule words from the previous sixteen (`m0` oldest).
    #[inline(always)]
    unsafe fn schedule(m0: __m128i, m1: __m128i, m2: __m128i, m3: __m128i) -> __m128i {
        let carry = _mm_alignr_epi8(m3, m2, 4);
        _mm_sha256msg2_epu32(
            _mm_add_epi32(_mm_sha256msg1_epu32(m0, m1), carry),
            m3,
        )
    }

    /// # Safety
    /// Requires the `sha`, `ssse3` and `sse4.1` CPU features and
    /// `blocks.len() % 64 == 0`.
    #[target_feature(enable = "sha,ssse3,sse4.1")]
    pub unsafe fn compress_blocks(state: &mut [u32; 8], blocks: &[u8]) {
        // Big-endian word loads: reverse bytes within each 32-bit lane.
        let byteswap = _mm_set_epi64x(0x0c0d_0e0f_0809_0a0bu64 as i64, 0x0405_0607_0001_0203);

        // Repack [a b c d | e f g h] into the ABEF/CDGH registers the
        // sha256rnds2 instruction operates on.
        let dcba = _mm_loadu_si128(state.as_ptr() as *const __m128i);
        let hgfe = _mm_loadu_si128(state.as_ptr().add(4) as *const __m128i);
        let badc = _mm_shuffle_epi32(dcba, 0xb1);
        let efgh = _mm_shuffle_epi32(hgfe, 0x1b);
        let mut abef = _mm_alignr_epi8(badc, efgh, 8);
        let mut cdgh = _mm_blend_epi16(efgh, badc, 0xf0);

        let k = |i: usize| _mm_loadu_si128(K.as_ptr().add(i) as *const __m128i);

        for block in blocks.chunks_exact(64) {
            let abef_save = abef;
            let cdgh_save = cdgh;

            macro_rules! rounds4 {
                ($wk:expr) => {{
                    let wk = $wk;
                    cdgh = _mm_sha256rnds2_epu32(cdgh, abef, wk);
                    abef = _mm_sha256rnds2_epu32(abef, cdgh, _mm_shuffle_epi32(wk, 0x0e));
                }};
            }

            let p = block.as_ptr() as *const __m128i;
            let mut m0 = _mm_shuffle_epi8(_mm_loadu_si128(p), byteswap);
            let mut m1 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(1)), byteswap);
            let mut m2 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(2)), byteswap);
            let mut m3 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(3)), byteswap);

            // Rounds 0-15 consume the raw message words.
            rounds4!(_mm_add_epi32(m0, k(0)));
            rounds4!(_mm_add_epi32(m1, k(4)));
            rounds4!(_mm_add_epi32(m2, k(8)));
            rounds4!(_mm_add_epi32(m3, k(12)));

            // Rounds 16-63: extend the schedule four words at a time.
            let mut t = 16;
            while t < 64 {
                m0 = schedule(m0, m1, m2, m3);
                rounds4!(_mm_add_epi32(m0, k(t)));
                (m0, m1, m2, m3) = (m1, m2, m3, m0);
                t += 4;
            }

            abef = _mm_add_epi32(abef, abef_save);
            cdgh = _mm_add_epi32(cdgh, cdgh_save);
        }

        // Unpack ABEF/CDGH back into [a..h].
        let feba = _mm_shuffle_epi32(abef, 0x1b);
        let dchg = _mm_shuffle_epi32(cdgh, 0xb1);
        let dcba = _mm_blend_epi16(feba, dchg, 0xf0);
        let hgfe = _mm_alignr_epi8(dchg, feba, 8);
        _mm_storeu_si128(state.as_mut_ptr() as *mut __m128i, dcba);
        _mm_storeu_si128(state.as_mut_ptr().add(4) as *mut __m128i, hgfe);
    }
}

/// Incremental SHA-256 hasher.
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Partial block awaiting 64 bytes.
    buf: [u8; 64],
    buf_len: usize,
    /// Total message length in bytes (messages ≥ 2^61 bytes are out of
    /// scope; the length is folded into the padding modulo 2^64 bits).
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Sha256 {
        Sha256::new()
    }
}

impl Sha256 {
    /// A fresh hasher.
    pub fn new() -> Sha256 {
        Sha256 {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb `data`. Whole blocks are compressed straight from the input
    /// slice in a single back-end call; only a trailing partial block is
    /// staged in the internal buffer.
    pub fn update(&mut self, data: &[u8]) {
        let mut data = data;
        self.total_len = self.total_len.wrapping_add(data.len() as u64);

        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                compress_blocks(&mut self.state, &block);
                self.buf_len = 0;
            }
        }

        let whole = data.len() & !63;
        if whole > 0 {
            compress_blocks(&mut self.state, &data[..whole]);
            data = &data[whole..];
        }

        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Pad (§5.1.1) and produce the digest, consuming the hasher.
    pub fn finish(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // 0x80, zeros, then the 64-bit big-endian length — one block if
        // the partial fits with 8 length bytes to spare, two otherwise.
        let mut tail = [0u8; 128];
        tail[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        tail[self.buf_len] = 0x80;
        let total = if self.buf_len < 56 { 64 } else { 128 };
        tail[total - 8..total].copy_from_slice(&bit_len.to_be_bytes());
        compress_blocks(&mut self.state, &tail[..total]);

        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state.iter()) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

/// One-shot digest of `data`.
pub fn digest(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finish()
}

/// Lowercase hex of a digest (64 chars), via nibble lookup — this runs
/// once per cache operation and must not dominate tiny lookups.
pub fn hex(digest: &Digest) -> String {
    const LUT: &[u8; 16] = b"0123456789abcdef";
    let mut out = Vec::with_capacity(64);
    for &byte in digest {
        out.push(LUT[(byte >> 4) as usize]);
        out.push(LUT[(byte & 0x0f) as usize]);
    }
    String::from_utf8(out).expect("hex is ASCII")
}

/// Parse a 64-char lowercase/uppercase hex string back into a digest.
pub fn from_hex(s: &str) -> Option<Digest> {
    if s.len() != 64 {
        return None;
    }
    let mut out = [0u8; 32];
    let bytes = s.as_bytes();
    for (i, slot) in out.iter_mut().enumerate() {
        let hi = (bytes[2 * i] as char).to_digit(16)?;
        let lo = (bytes[2 * i + 1] as char).to_digit(16)?;
        *slot = ((hi << 4) | lo) as u8;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_digest(data: &[u8]) -> String {
        hex(&digest(data))
    }

    #[test]
    fn nist_vector_empty() {
        assert_eq!(
            hex_digest(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_vector_abc() {
        assert_eq!(
            hex_digest(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_vector_two_block() {
        assert_eq!(
            hex_digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_vector_896_bit() {
        let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
                    hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        assert_eq!(
            hex_digest(msg),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn nist_vector_million_a() {
        // Fed in awkward chunks to exercise the buffering path.
        let mut h = Sha256::new();
        let chunk = [b'a'; 997];
        let mut remaining = 1_000_000usize;
        while remaining > 0 {
            let take = remaining.min(chunk.len());
            h.update(&chunk[..take]);
            remaining -= take;
        }
        assert_eq!(
            hex(&h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let mut h = Sha256::new();
        h.update(&data[..1]);
        h.update(&data[1..64]);
        h.update(&data[64..65]);
        h.update(&data[65..]);
        assert_eq!(h.finish(), digest(&data));
    }

    #[test]
    fn scalar_and_dispatch_agree() {
        // Run the scalar compressor directly against the dispatching
        // front door on multi-block input; on SHA-NI hosts this pins the
        // two back ends to each other, elsewhere it is a self-check.
        let data: Vec<u8> = (0..4096u32).map(|i| i.wrapping_mul(2654435761) as u8).collect();
        let mut scalar_state = H0;
        for block in data.chunks_exact(64) {
            compress_scalar(&mut scalar_state, block.try_into().unwrap());
        }
        let mut dispatch_state = H0;
        compress_blocks(&mut dispatch_state, &data);
        assert_eq!(scalar_state, dispatch_state);
    }

    #[test]
    fn hex_round_trip() {
        let d = digest(b"round trip");
        assert_eq!(from_hex(&hex(&d)), Some(d));
        assert_eq!(from_hex("zz"), None);
        assert_eq!(from_hex(&"g".repeat(64)), None);
    }
}
