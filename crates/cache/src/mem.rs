//! The in-process tier: a bytes-capped LRU over decoded cache entries.
//!
//! One instance is shared (behind the [`crate::Cache`] interior lock) by
//! every `e9patchd` connection thread, so a fleet of clients requesting
//! the same rewrite hits memory after the first emit — no disk read, no
//! re-verification. Values are stored as [`Blob`]s so a hit hands the
//! caller a shared view without copying the (potentially multi-megabyte)
//! payload under the lock — and a disk promotion inserts the very read
//! buffer the payload arrived in, not a duplicate.

use crate::sha256::Digest;
use crate::Blob;
use std::collections::{BTreeMap, HashMap};

/// Bytes-capped LRU map from digest to payload.
///
/// Recency is tracked with a monotone sequence number per entry plus an
/// ordered index from sequence to digest; both `get` and `insert` bump
/// the entry to the newest sequence, and eviction pops from the oldest.
#[derive(Debug, Default)]
pub struct MemLru {
    entries: HashMap<Digest, (u64, Blob)>,
    by_seq: BTreeMap<u64, Digest>,
    next_seq: u64,
    bytes: usize,
    cap: usize,
    evictions: u64,
}

impl MemLru {
    /// An LRU holding at most `cap` payload bytes. A zero cap disables
    /// the tier (every insert is immediately over budget).
    pub fn new(cap: usize) -> MemLru {
        MemLru {
            cap,
            ..MemLru::default()
        }
    }

    /// Current payload bytes held.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Evictions performed so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Look `key` up, bumping it to most-recently-used on a hit.
    pub fn get(&mut self, key: &Digest) -> Option<Blob> {
        let (seq, payload) = self.entries.get(key)?;
        let (old_seq, payload) = (*seq, payload.clone());
        self.by_seq.remove(&old_seq);
        let seq = self.bump();
        self.by_seq.insert(seq, *key);
        self.entries.insert(*key, (seq, payload.clone()));
        Some(payload)
    }

    /// Insert (or refresh) `key`, evicting least-recently-used entries
    /// until the tier fits its byte budget. Payloads larger than the
    /// whole budget are not admitted at all.
    pub fn insert(&mut self, key: Digest, payload: Blob) {
        if payload.len() > self.cap {
            return;
        }
        if let Some((old_seq, old)) = self.entries.remove(&key) {
            self.by_seq.remove(&old_seq);
            self.bytes -= old.len();
        }
        while self.bytes + payload.len() > self.cap {
            let Some((&oldest, _)) = self.by_seq.iter().next() else {
                break;
            };
            let victim = self.by_seq.remove(&oldest).expect("indexed digest");
            if let Some((_, evicted)) = self.entries.remove(&victim) {
                self.bytes -= evicted.len();
                self.evictions += 1;
            }
        }
        let seq = self.bump();
        self.bytes += payload.len();
        self.by_seq.insert(seq, key);
        self.entries.insert(key, (seq, payload));
    }

    /// Drop one entry (does not count as an eviction — used to purge an
    /// entry that decoded as garbage, so it can never be served again).
    pub fn remove(&mut self, key: &Digest) {
        if let Some((seq, old)) = self.entries.remove(key) {
            self.by_seq.remove(&seq);
            self.bytes -= old.len();
        }
    }

    /// Drop every entry (counters are left alone).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.by_seq.clear();
        self.bytes = 0;
    }

    fn bump(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::digest;

    fn key(n: u8) -> Digest {
        digest(&[n])
    }

    fn val(len: usize, fill: u8) -> Blob {
        Blob::from_vec(vec![fill; len])
    }

    #[test]
    fn get_returns_inserted_payload() {
        let mut lru = MemLru::new(1024);
        lru.insert(key(1), val(10, 0xAB));
        assert_eq!(lru.get(&key(1)).unwrap().as_ref(), &[0xAB; 10]);
        assert!(lru.get(&key(2)).is_none());
        assert_eq!(lru.bytes(), 10);
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let mut lru = MemLru::new(30);
        lru.insert(key(1), val(10, 1));
        lru.insert(key(2), val(10, 2));
        lru.insert(key(3), val(10, 3));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(lru.get(&key(1)).is_some());
        lru.insert(key(4), val(10, 4));
        assert!(lru.get(&key(2)).is_none(), "LRU entry should be evicted");
        assert!(lru.get(&key(1)).is_some());
        assert!(lru.get(&key(3)).is_some());
        assert!(lru.get(&key(4)).is_some());
        assert_eq!(lru.evictions(), 1);
        assert_eq!(lru.bytes(), 30);
    }

    #[test]
    fn oversized_payload_is_not_admitted() {
        let mut lru = MemLru::new(8);
        lru.insert(key(1), val(9, 0));
        assert!(lru.is_empty());
        assert_eq!(lru.evictions(), 0);
    }

    #[test]
    fn reinsert_replaces_and_accounts_bytes() {
        let mut lru = MemLru::new(100);
        lru.insert(key(1), val(40, 1));
        lru.insert(key(1), val(10, 2));
        assert_eq!(lru.bytes(), 10);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.get(&key(1)).unwrap().as_ref(), &[2; 10]);
    }

    #[test]
    fn clear_empties_the_tier() {
        let mut lru = MemLru::new(100);
        lru.insert(key(1), val(10, 1));
        lru.insert(key(2), val(10, 2));
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.bytes(), 0);
        assert!(lru.get(&key(1)).is_none());
    }

    #[test]
    fn zero_cap_disables_the_tier() {
        let mut lru = MemLru::new(0);
        lru.insert(key(1), val(1, 1));
        assert!(lru.is_empty());
    }
}
