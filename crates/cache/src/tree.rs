//! Shard-parallel tree hashing for cache keying.
//!
//! Keying a rewrite request starts with a digest of the whole input
//! binary — often the largest single hashing job in the pipeline. A plain
//! sequential SHA-256 cannot use the worker pool that `--jobs N` already
//! buys the planner, so large binaries key at single-core speed. The tree
//! digest fixes that while staying **jobs-invariant**: the result depends
//! only on the bytes, never on how many workers computed it, so a key
//! produced with `--jobs 8` matches one produced with `--jobs 1` (the
//! same invariant PR 4 pinned for planning itself).
//!
//! Construction:
//!
//! * `len(data) ≤ CHUNK` (1 MiB): the tree digest **is** the plain
//!   `sha256(data)`. Small inputs pay zero framing overhead and the
//!   equality `tree_digest(d, jobs) == digest(d)` holds literally — the
//!   property `tests/sha_props.rs` pins.
//! * larger inputs: the data is split into fixed 1 MiB leaves, each leaf
//!   hashed independently (in parallel across `jobs` threads, contiguous
//!   shards per worker), and the root is
//!   `sha256(DOMAIN ‖ le64(len) ‖ leaf₀ ‖ leaf₁ ‖ …)`.
//!
//! The domain string and the length prefix keep the root from colliding
//! with any plain digest of attacker-chosen bytes: a plain digest over a
//! buffer that happens to spell `DOMAIN ‖ len ‖ leaves` is only reachable
//! for inputs ≤ 1 MiB, and `DOMAIN` contains a NUL so it is never a
//! prefix of ELF magic. Deterministic by construction; no locks, no
//! shared mutable state — each worker writes disjoint leaf slots.

use crate::sha256::{digest, Digest, Sha256};

/// Leaf size. Also the engagement threshold below which the tree digest
/// degenerates to the plain digest.
pub const CHUNK: usize = 1 << 20;

/// Domain separator for the root hash (NUL-terminated so it can never be
/// a prefix of a leaf's content or of an ELF header).
const DOMAIN: &[u8] = b"e9cache/tree-v1\0";

/// Digest `data` with up to `jobs` worker threads. Jobs-invariant: the
/// result depends only on `data`. `jobs == 0` is treated as 1.
pub fn tree_digest(data: &[u8], jobs: usize) -> Digest {
    if data.len() <= CHUNK {
        return digest(data);
    }

    let chunks: Vec<&[u8]> = data.chunks(CHUNK).collect();
    let mut leaves = vec![[0u8; 32]; chunks.len()];
    let workers = jobs.max(1).min(chunks.len());

    if workers <= 1 {
        for (leaf, chunk) in leaves.iter_mut().zip(&chunks) {
            *leaf = digest(chunk);
        }
    } else {
        // Contiguous shards, one per worker; the split is a function of
        // (len, workers) only and every slot is written exactly once.
        let per = chunks.len().div_ceil(workers);
        std::thread::scope(|scope| {
            for (leaf_shard, chunk_shard) in
                leaves.chunks_mut(per).zip(chunks.chunks(per))
            {
                scope.spawn(move || {
                    for (leaf, chunk) in leaf_shard.iter_mut().zip(chunk_shard) {
                        *leaf = digest(chunk);
                    }
                });
            }
        });
    }

    let mut root = Sha256::new();
    root.update(DOMAIN);
    root.update(&(data.len() as u64).to_le_bytes());
    for leaf in &leaves {
        root.update(leaf);
    }
    root.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_input_is_the_plain_digest() {
        for len in [0usize, 1, 63, 64, 4096, CHUNK] {
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            assert_eq!(tree_digest(&data, 1), digest(&data), "len={len}");
            assert_eq!(tree_digest(&data, 7), digest(&data), "len={len}");
        }
    }

    #[test]
    fn large_input_is_jobs_invariant() {
        let data: Vec<u8> = (0..3 * CHUNK + 777)
            .map(|i| (i as u32).wrapping_mul(2654435761) as u8)
            .collect();
        let reference = tree_digest(&data, 1);
        for jobs in [0usize, 2, 3, 4, 16, 1000] {
            assert_eq!(tree_digest(&data, jobs), reference, "jobs={jobs}");
        }
        // And it is NOT the plain digest: the tree is a different domain.
        assert_ne!(reference, digest(&data));
    }

    #[test]
    fn chunk_boundary_lengths_are_distinct() {
        let a = vec![0u8; CHUNK + 1];
        let b = vec![0u8; CHUNK + 2];
        assert_ne!(tree_digest(&a, 2), tree_digest(&b, 2));
        // One byte past the threshold engages the tree.
        assert_ne!(tree_digest(&a, 1), digest(&a));
    }
}
