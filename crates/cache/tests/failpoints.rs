//! Fault-semantics tests driven by `e9failpt` injection: transient disk
//! I/O errors degrade to misses (never negative-cached, never poison the
//! entry), and the disk-tier circuit breaker walks its documented
//! trip → fast-fail → probe → recover cycle under a deterministic
//! ENOSPC schedule.
//!
//! Failpoint activation is process-global, so every test here holds the
//! `activate_scoped` gate — they serialize against each other and no
//! other test binary runs failpoints.

use e9cache::{breaker, digest, Cache, CacheConfig, Entry, Hit};
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("e9cache-failpt-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn disk_cache(dir: &PathBuf) -> Cache {
    Cache::open(&CacheConfig {
        dir: Some(dir.clone()),
        ..CacheConfig::default()
    })
    .unwrap()
}

#[test]
fn transient_disk_read_error_is_a_miss_not_a_negative_entry() {
    let dir = tmpdir("transient");
    let key = digest(b"job");
    // Publish a healthy positive entry to disk.
    disk_cache(&dir).put(&key, &Entry::Ok(b"artifact".to_vec()));

    // A fresh cache over the same store (empty memory tier) whose first
    // disk read hits an injected EIO.
    let cache = disk_cache(&dir);
    let _fp = e9failpt::activate_scoped("cache.disk.read=eio@once", 1).unwrap();

    // The faulted lookup degrades to a miss — the caller runs cold.
    assert_eq!(cache.lookup(&key), None);
    let stats = cache.stats();
    assert_eq!(stats.errors, 1);
    assert_eq!(stats.misses, 1);
    assert!(!stats.disk_breaker_open, "one error must not trip the breaker");

    // Once the transient fault clears, the original positive entry is
    // served intact: the error was never cached, negatively or otherwise.
    match cache.lookup(&key) {
        Some(Hit::Payload(blob)) => assert_eq!(&blob[..], b"artifact"),
        other => panic!("expected the positive entry back, got {other:?}"),
    }
    assert_eq!(cache.stats().negative_hits, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn breaker_trips_to_memory_only_and_recovers() {
    let dir = tmpdir("breaker-cycle");
    let cache = disk_cache(&dir);
    // Disk full for the first four staging attempts, then space frees up.
    let _fp = e9failpt::activate_scoped("cache.disk.stage=enospc@first:4", 1).unwrap();

    let keys: Vec<_> = (0..12u64).map(|i| digest(&i.to_le_bytes())).collect();
    for (i, key) in keys.iter().enumerate() {
        cache.put(key, &Entry::Ok(format!("artifact {i}").into_bytes()));
        // The expected walk, put by put (TRIP_THRESHOLD = 3,
        // PROBE_INTERVAL = 4): 3 failures trip it open; 3 writes
        // fast-fail; the 4th skipped-write opportunity probes and fails
        // (4th injected fault, pacing restarts); 3 more fast-fails; the
        // next probe succeeds (schedule exhausted) and closes it.
        let open = matches!(i, 2..=9);
        assert_eq!(cache.disk_breaker().is_open(), open, "after put {i}");
        // Memory-only mode still serves: everything put so far hits.
        assert!(cache.lookup(&keys[i / 2]).is_some(), "mem tier lost entry during put {i}");
    }

    let stats = cache.stats();
    assert!(!stats.disk_breaker_open);
    assert_eq!(stats.disk_breaker_trips, 1);
    assert_eq!(stats.disk_breaker_probes, 2);
    assert_eq!(stats.disk_breaker_recoveries, 1);
    assert_eq!(stats.disk_breaker_fast_fails, 6);
    // Puts 1-3 and the failed probe each counted one degradation.
    assert_eq!(stats.errors, 4);
    assert_eq!(
        breaker::BreakerStats {
            open: false,
            trips: 1,
            fast_fails: 6,
            probes: 2,
            recoveries: 1,
        },
        cache.disk_breaker().stats()
    );

    // Recovered for real: the post-recovery puts reached the disk and
    // survive this process's memory tier.
    let fresh = disk_cache(&dir);
    assert!(fresh.lookup(&keys[10]).is_some(), "post-recovery put not on disk");
    assert!(fresh.lookup(&keys[11]).is_some());
    // The disk-full-era puts never landed (dropped, not wedged).
    assert_eq!(fresh.lookup(&keys[0]), None);
    std::fs::remove_dir_all(&dir).ok();
}
