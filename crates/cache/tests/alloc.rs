//! Warm-path allocation budget, pinned with a counting allocator.
//!
//! The whole point of the `Blob` plumbing is that a cache hit never
//! copies the artifact: a memory-tier hit allocates nothing
//! payload-sized, and a disk-tier hit allocates exactly one buffer — the
//! `fs::read` of the entry file — which is then sliced in place and
//! *shared* with the memory tier on promotion. This test would have
//! failed loudly against the PR 5 read path (read buffer + `to_vec()` +
//! `Arc<[u8]>` promotion ≈ 3× the artifact).
//!
//! A `#[global_allocator]` shim counts bytes requested while a tracking
//! flag is set. Everything runs in ONE `#[test]` so no concurrent test
//! thread can allocate into our window.

use e9cache::{Cache, CacheConfig, Entry, Hit};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static TRACKING: AtomicBool = AtomicBool::new(false);
static ALLOCATED: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) && new_size > layout.size() {
            ALLOCATED.fetch_add((new_size - layout.size()) as u64, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Bytes allocated while running `f`.
fn allocated_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    ALLOCATED.store(0, Ordering::SeqCst);
    TRACKING.store(true, Ordering::SeqCst);
    let result = f();
    TRACKING.store(false, Ordering::SeqCst);
    (ALLOCATED.load(Ordering::SeqCst), result)
}

#[test]
fn lookup_does_not_allocate_beyond_the_artifact() {
    const PAYLOAD: usize = 1 << 20; // 1 MiB artifact
    // Generous fixed overhead for journaling (index append buffers,
    // PathBuf construction, the hex string, HashMap growth): an order of
    // magnitude below the payload, so a single extra payload copy —
    // 1 MiB — cannot hide under it.
    const SLACK: u64 = 128 << 10;

    let dir = std::env::temp_dir().join(format!("e9cache-alloc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = Cache::open(&CacheConfig {
        dir: Some(dir.clone()),
        bypass_bytes: Some(0),
        ..CacheConfig::default()
    })
    .unwrap();

    let key = e9cache::digest(b"alloc probe");
    let artifact: Vec<u8> = (0..PAYLOAD).map(|i| (i % 251) as u8).collect();
    cache.put(&key, &Entry::Ok(artifact.clone()));

    // Memory-tier hit: no payload-sized allocation at all.
    let (mem_bytes, hit) = allocated_during(|| cache.lookup(&key));
    match hit {
        Some(Hit::Payload(blob)) => assert_eq!(&blob[..], &artifact[..]),
        other => panic!("expected payload hit, got {other:?}"),
    }
    assert!(
        mem_bytes < SLACK,
        "memory hit allocated {mem_bytes} bytes (payload is {PAYLOAD})"
    );

    // Disk-tier hit (fresh cache, empty memory tier): exactly one
    // artifact-sized buffer — the entry-file read — plus slack. The
    // promotion into the memory tier must share that buffer, not copy.
    let fresh = Cache::open(&CacheConfig {
        dir: Some(dir.clone()),
        bypass_bytes: Some(0),
        ..CacheConfig::default()
    })
    .unwrap();
    let (disk_bytes, hit) = allocated_during(|| fresh.lookup(&key));
    match hit {
        Some(Hit::Payload(blob)) => assert_eq!(&blob[..], &artifact[..]),
        other => panic!("expected payload hit, got {other:?}"),
    }
    let read_buffer = (PAYLOAD + 4096) as u64; // entry file + header, rounded up
    assert!(
        disk_bytes < read_buffer + SLACK,
        "disk hit allocated {disk_bytes} bytes — more than one artifact-sized read \
         (payload is {PAYLOAD}); the warm path is copying again"
    );

    // And the promoted entry now hits memory allocation-free too.
    let (promoted_bytes, hit) = allocated_during(|| fresh.lookup(&key));
    assert!(matches!(hit, Some(Hit::Payload(_))));
    assert!(
        promoted_bytes < SLACK,
        "post-promotion memory hit allocated {promoted_bytes} bytes"
    );

    std::fs::remove_dir_all(&dir).ok();
}
