//! MemLru byte-accounting property: under any random sequence of
//! `insert` (including update-in-place with a different size), `get`,
//! `remove` and `clear`, the tracked byte count must equal the sum of the
//! live entries' lengths, never exceed the cap, and the entry/index maps
//! must stay in lockstep. This pins the update-in-place case in
//! particular — putting a smaller payload under an existing key must
//! release the old size from the budget, or the tier slowly strangles
//! itself.

use e9cache::mem::MemLru;
use e9cache::{digest, Blob, Digest};
use e9qcheck::prelude::*;

/// One scripted operation, decoded from three drawn bytes.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Insert payload of `len` bytes under key id `k` (small key space so
    /// update-in-place happens constantly).
    Insert { k: u8, len: usize },
    Get { k: u8 },
    Remove { k: u8 },
    Clear,
}

fn decode(op: u8, k: u8, len: u16) -> Op {
    let k = k % 8;
    match op % 16 {
        0..=9 => Op::Insert {
            k,
            len: len as usize % 300,
        },
        10..=12 => Op::Get { k },
        13..=14 => Op::Remove { k },
        _ => Op::Clear,
    }
}

fn key(k: u8) -> Digest {
    digest(&[k])
}

props! {
    #[test]
    fn tracked_bytes_equal_sum_of_live_entries(
        cap in 0u16..600,
        script in vec((any::<u8>(), any::<u8>(), any::<u16>()), 0..64),
    ) {
        let cap = cap as usize;
        let mut lru = MemLru::new(cap);
        // The model: what each live key's payload length must be
        // (BTreeMap so resync iteration — which touches recency — is
        // deterministic and failures replay).
        let mut model: std::collections::BTreeMap<u8, usize> =
            std::collections::BTreeMap::new();

        for &(op, k, len) in &script {
            match decode(op, k, len) {
                Op::Insert { k, len } => {
                    lru.insert(key(k), Blob::from_vec(vec![k; len]));
                    if len <= cap {
                        model.insert(k, len);
                        // The insert may have evicted other model keys;
                        // resync below from the LRU's own view.
                    }
                    // Oversized payloads are not admitted and the
                    // previous entry (if any) is left in place.
                }
                Op::Get { k } => {
                    let hit = lru.get(&key(k));
                    prop_assert_eq!(
                        hit.as_ref().map(|b| b.len()),
                        model.get(&k).copied(),
                        "get({k}) disagrees with model"
                    );
                }
                Op::Remove { k } => {
                    lru.remove(&key(k));
                    model.remove(&k);
                }
                Op::Clear => {
                    lru.clear();
                    model.clear();
                }
            }
            // Resync evictions: any model key the LRU no longer holds
            // was evicted by the last insert. Surviving entries must
            // still have their modeled length.
            let mut survivors = std::collections::BTreeMap::new();
            for (&k, &len) in &model {
                if let Some(blob) = lru.get(&key(k)) {
                    prop_assert_eq!(blob.len(), len, "survivor {k} changed length");
                    survivors.insert(k, len);
                }
            }
            model = survivors;

            // The invariants under test.
            let live: usize = model.values().sum();
            prop_assert_eq!(lru.bytes(), live, "tracked bytes drifted from live sum");
            prop_assert_eq!(lru.len(), model.len(), "entry count drifted");
            prop_assert!(lru.bytes() <= cap, "budget exceeded: {} > {cap}", lru.bytes());
        }
    }
}
