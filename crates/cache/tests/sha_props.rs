//! SHA-256 correctness properties: the incremental hasher must be
//! chunking-invariant (any split of a message yields the one-shot
//! digest), and the hex codec must round-trip. Together with the NIST
//! FIPS 180-4 vectors pinned as unit tests, this fixes the hash — and
//! therefore every cache key — against accidental drift.

use e9cache::sha256::{self, Sha256};
use e9qcheck::prelude::*;

props! {
    #[test]
    fn random_chunking_equals_one_shot(
        data in vec(any::<u8>(), 0..4096),
        cuts in vec(any::<u16>(), 0..16),
    ) {
        let one_shot = sha256::digest(&data);
        // Turn the drawn cut points into a partition of `data`.
        let mut bounds: Vec<usize> = cuts
            .iter()
            .map(|&c| if data.is_empty() { 0 } else { c as usize % data.len() })
            .collect();
        bounds.push(0);
        bounds.push(data.len());
        bounds.sort_unstable();
        let mut h = Sha256::new();
        for pair in bounds.windows(2) {
            h.update(&data[pair[0]..pair[1]]);
        }
        prop_assert_eq!(h.finish(), one_shot);
    }

    #[test]
    fn byte_at_a_time_equals_one_shot(data in vec(any::<u8>(), 0..300)) {
        // The pathological chunking: every byte its own update call.
        let mut h = Sha256::new();
        for b in &data {
            h.update(std::slice::from_ref(b));
        }
        prop_assert_eq!(h.finish(), sha256::digest(&data));
    }

    #[test]
    fn distinct_messages_get_distinct_digests(
        a in vec(any::<u8>(), 0..128),
        b in vec(any::<u8>(), 0..128),
    ) {
        // Not a collision search — just pins that the digest actually
        // depends on the input (a constant function would pass the
        // chunking property).
        if a != b {
            prop_assert_ne!(sha256::digest(&a), sha256::digest(&b));
        }
    }

    #[test]
    fn hex_round_trips_all_digests(data in vec(any::<u8>(), 0..64)) {
        let d = sha256::digest(&data);
        let text = sha256::hex(&d);
        prop_assert_eq!(text.len(), 64);
        prop_assert_eq!(sha256::from_hex(&text), Some(d));
    }
}
