//! SHA-256 correctness properties: the incremental hasher must be
//! chunking-invariant (any split of a message yields the one-shot
//! digest), and the hex codec must round-trip. Together with the NIST
//! FIPS 180-4 vectors pinned as unit tests, this fixes the hash — and
//! therefore every cache key — against accidental drift.
//!
//! The tree-digest properties pin the keying contract on top: below the
//! 1 MiB chunk the tree digest IS the one-shot digest (so small keys are
//! free), and above it the result is invariant in the worker count (so
//! `--jobs` can never split the cache).

use e9cache::sha256::{self, Sha256};
use e9cache::tree::{self, tree_digest};
use e9qcheck::prelude::*;

props! {
    #[test]
    fn random_chunking_equals_one_shot(
        data in vec(any::<u8>(), 0..4096),
        cuts in vec(any::<u16>(), 0..16),
    ) {
        let one_shot = sha256::digest(&data);
        // Turn the drawn cut points into a partition of `data`.
        let mut bounds: Vec<usize> = cuts
            .iter()
            .map(|&c| if data.is_empty() { 0 } else { c as usize % data.len() })
            .collect();
        bounds.push(0);
        bounds.push(data.len());
        bounds.sort_unstable();
        let mut h = Sha256::new();
        for pair in bounds.windows(2) {
            h.update(&data[pair[0]..pair[1]]);
        }
        prop_assert_eq!(h.finish(), one_shot);
    }

    #[test]
    fn byte_at_a_time_equals_one_shot(data in vec(any::<u8>(), 0..300)) {
        // The pathological chunking: every byte its own update call.
        let mut h = Sha256::new();
        for b in &data {
            h.update(std::slice::from_ref(b));
        }
        prop_assert_eq!(h.finish(), sha256::digest(&data));
    }

    #[test]
    fn distinct_messages_get_distinct_digests(
        a in vec(any::<u8>(), 0..128),
        b in vec(any::<u8>(), 0..128),
    ) {
        // Not a collision search — just pins that the digest actually
        // depends on the input (a constant function would pass the
        // chunking property).
        if a != b {
            prop_assert_ne!(sha256::digest(&a), sha256::digest(&b));
        }
    }

    #[test]
    fn hex_round_trips_all_digests(data in vec(any::<u8>(), 0..64)) {
        let d = sha256::digest(&data);
        let text = sha256::hex(&d);
        prop_assert_eq!(text.len(), 64);
        prop_assert_eq!(sha256::from_hex(&text), Some(d));
    }

    #[test]
    fn tree_digest_of_small_input_is_the_one_shot_digest(
        data in vec(any::<u8>(), 0..4096),
        jobs in any::<u8>(),
    ) {
        // Below the chunk size the tree construction must degenerate to
        // the plain digest, for every worker count.
        prop_assert_eq!(tree_digest(&data, jobs as usize), sha256::digest(&data));
    }

    #[test]
    fn tree_digest_is_jobs_invariant_above_the_chunk(
        seed in any::<u64>(),
        extra in 0usize..2048,
        jobs_a in 1usize..9,
        jobs_b in 1usize..9,
    ) {
        // A cheap deterministic filler: real multi-chunk data without
        // drawing megabytes from the generator. Kept just past the chunk
        // boundary (2 leaves) so the whole property suite stays fast;
        // the 3-chunk shape is pinned by a unit test in `tree.rs`.
        let len = tree::CHUNK + extra + 1;
        let mut state = seed | 1;
        let mut data = vec![0u8; len];
        for chunk in data.chunks_mut(8) {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            chunk.copy_from_slice(&state.to_le_bytes()[..chunk.len()]);
        }
        prop_assert_eq!(tree_digest(&data, jobs_a), tree_digest(&data, jobs_b));
        // And the tree really is a different domain from the flat hash.
        prop_assert_ne!(tree_digest(&data, jobs_a), sha256::digest(&data));
    }
}
