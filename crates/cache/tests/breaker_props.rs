//! Circuit-breaker property: under any random operation sequence the
//! [`e9cache::Breaker`] must agree with an independent reference model
//! of its documented state machine, and its counters must satisfy the
//! structural invariants (closed ⇔ trips == recoveries, probes only
//! while open, every admitted probe preceded by exactly
//! `PROBE_INTERVAL - 1` skipped writes since the last pacing reset).
//!
//! The model is deliberately written from the *docs*, not the code: a
//! drift between what the breaker promises (trip after
//! `TRIP_THRESHOLD` consecutive I/O errors, write-only probes every
//! `PROBE_INTERVAL`-th skipped write, write-success-only recovery,
//! read successes never resetting) and what it does is a failure here.

use e9cache::breaker::{Admit, Breaker, OpKind, PROBE_INTERVAL, TRIP_THRESHOLD};
use e9qcheck::prelude::*;

/// One scripted disk-op outcome: `(kind, fails)`.
#[derive(Debug, Clone, Copy)]
struct Op {
    kind: OpKind,
    fails: bool,
}

fn decode(raw: u8) -> Op {
    Op {
        kind: if raw & 1 == 0 { OpKind::Read } else { OpKind::Write },
        // Bias toward failure so trips/probes/recoveries all happen
        // within short scripts.
        fails: raw & 0b110 != 0,
    }
}

/// The reference model, transcribed from the breaker module docs.
#[derive(Debug, Default)]
struct Model {
    open: bool,
    consecutive: u32,
    skipped_writes: u64,
    trips: u64,
    fast_fails: u64,
    probes: u64,
    recoveries: u64,
}

impl Model {
    /// Returns what `admit` must answer.
    fn admit(&mut self, kind: OpKind) -> Admit {
        if !self.open {
            return Admit::Allow;
        }
        match kind {
            OpKind::Read => {
                self.fast_fails += 1;
                Admit::Skip
            }
            OpKind::Write => {
                self.skipped_writes += 1;
                if self.skipped_writes % PROBE_INTERVAL == 0 {
                    self.probes += 1;
                    Admit::Probe
                } else {
                    self.fast_fails += 1;
                    Admit::Skip
                }
            }
        }
    }

    fn record_ok(&mut self, kind: OpKind) {
        if kind != OpKind::Write {
            return; // read successes prove nothing about write health
        }
        self.consecutive = 0;
        if self.open {
            self.open = false;
            self.recoveries += 1;
            self.skipped_writes = 0;
        }
    }

    fn record_io_error(&mut self) {
        self.consecutive += 1;
        if !self.open && self.consecutive >= TRIP_THRESHOLD {
            self.open = true;
            self.trips += 1;
        }
        self.skipped_writes = 0;
    }
}

props! {
    #[test]
    fn breaker_matches_the_documented_state_machine(
        script in vec(any::<u8>(), 0..200),
    ) {
        let breaker = Breaker::new();
        let mut model = Model::default();

        for (i, &raw) in script.iter().enumerate() {
            let op = decode(raw);
            let admit = breaker.admit(op.kind);
            let expected = model.admit(op.kind);
            prop_assert_eq!(admit, expected, "admit diverged at step {i} ({op:?})");
            // Only admitted ops actually run and report an outcome.
            if admit != Admit::Skip {
                if op.fails {
                    breaker.record_io_error();
                    model.record_io_error();
                } else {
                    breaker.record_ok(op.kind);
                    model.record_ok(op.kind);
                }
            }

            let stats = breaker.stats();
            prop_assert_eq!(stats.open, model.open, "open diverged at step {i}");
            prop_assert_eq!(breaker.is_open(), model.open);
            prop_assert_eq!(stats.trips, model.trips, "trips diverged at step {i}");
            prop_assert_eq!(stats.fast_fails, model.fast_fails, "fast_fails diverged at step {i}");
            prop_assert_eq!(stats.probes, model.probes, "probes diverged at step {i}");
            prop_assert_eq!(stats.recoveries, model.recoveries, "recoveries diverged at step {i}");

            // Structural invariants, independent of the model.
            if stats.open {
                prop_assert_eq!(stats.trips, stats.recoveries + 1);
            } else {
                prop_assert_eq!(stats.trips, stats.recoveries);
            }
        }
    }
}
