//! The x86-64 interpreter.
//!
//! Executes the subset of x86-64 the synthetic workloads, trampolines,
//! loader stub and instrumentation runtime are built from — decoded live by
//! [`e9x86::decode()`] with a per-address instruction cache (invalidated on
//! mapping changes, since the injected loader remaps pages while running).
//!
//! Performance accounting follows the reproduction's substitution of
//! wall-clock by a **cost-weighted instruction count** (see DESIGN.md):
//! plain instructions cost 1, near control transfers cost
//! [`Vm::branch_cost`], far control transfers (beyond
//! [`FAR_BRANCH_DISTANCE`] — e.g. the ±2 GiB trampoline round trips) cost
//! [`Vm::far_branch_cost`], and an `int3` trap (baseline B0) additionally
//! costs [`Vm::trap_cost`] to model the kernel round trip. The raw retired
//! count is kept separately in [`Vm::insns`].

use crate::cpu::{Cpu, Flags};
use crate::heap::{BumpHeap, HeapAllocator};
use crate::mem::{Fault, Memory, Perms, PhysId, PAGE_SIZE};
use e9x86::insn::{Cond, Insn, Kind, MemOperand, Opcode};
use e9x86::reg::{Reg, Width};
use std::collections::HashMap;
use std::fmt;

/// Pseudo-syscall number for guest `malloc` (the "E9" theme).
pub const SYS_MALLOC: u64 = 0xE901;
/// Pseudo-syscall number for guest `free`.
pub const SYS_FREE: u64 = 0xE902;

/// Default instruction-cost penalty for a B0 `int3` trap (kernel/user
/// round trip + signal frame; "orders of magnitude" per the paper §2.1.1).
pub const DEFAULT_TRAP_COST: u64 = 2000;

/// Default cost of a *near* control transfer (within
/// [`FAR_BRANCH_DISTANCE`]) relative to a plain instruction.
pub const DEFAULT_BRANCH_COST: u64 = 2;

/// Default cost of a *far* control transfer. Real hardware pays
/// pipeline/BTB/icache penalties on the trampoline round trips (targets
/// ±2 GiB away) — the exact mechanism behind the paper's overhead numbers
/// — which a flat instruction count would hide.
pub const DEFAULT_FAR_BRANCH_COST: u64 = 6;

/// Branch distance beyond which the far cost applies (icache reach).
pub const FAR_BRANCH_DISTANCE: u64 = 64 * 1024;

/// Guest stack top.
pub const STACK_TOP: u64 = 0x7FFE_0000_0000;
/// Guest stack size.
pub const STACK_SIZE: u64 = 1 << 20;

/// Execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// Memory fault at `rip`.
    Fault {
        /// The fault.
        fault: Fault,
        /// Instruction pointer at the time.
        rip: u64,
    },
    /// Undecodable instruction bytes.
    Decode {
        /// Instruction pointer.
        rip: u64,
        /// Decoder diagnostics.
        msg: String,
    },
    /// Decoded but unimplemented instruction.
    Unsupported {
        /// Instruction pointer.
        rip: u64,
        /// Description.
        msg: String,
    },
    /// `int3` executed with no trap-table entry.
    UnexpectedTrap(u64),
    /// Unknown syscall number.
    BadSyscall(u64),
    /// `run` exceeded its step budget.
    StepLimit(u64),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Fault { fault, rip } => write!(f, "{fault} at rip={rip:#x}"),
            VmError::Decode { rip, msg } => write!(f, "decode error at {rip:#x}: {msg}"),
            VmError::Unsupported { rip, msg } => write!(f, "unsupported at {rip:#x}: {msg}"),
            VmError::UnexpectedTrap(rip) => write!(f, "unexpected int3 at {rip:#x}"),
            VmError::BadSyscall(n) => write!(f, "unknown syscall {n:#x}"),
            VmError::StepLimit(n) => write!(f, "step limit of {n} exceeded"),
        }
    }
}

impl std::error::Error for VmError {}

/// Result of a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Guest exit code.
    pub exit_code: i32,
    /// Cost-weighted instruction count (includes trap penalties).
    pub steps: u64,
    /// Plain retired-instruction count.
    pub insns: u64,
    /// Captured stdout/stderr bytes.
    pub output: Vec<u8>,
}

/// The emulator.
#[derive(Debug)]
pub struct Vm {
    /// Register state.
    pub cpu: Cpu,
    /// Memory state.
    pub mem: Memory,
    /// Guest heap backend.
    pub heap: Box<dyn HeapAllocator>,
    /// Cost-weighted step counter.
    pub steps: u64,
    /// Retired instruction counter.
    pub insns: u64,
    /// Captured write(1/2) output.
    pub output: Vec<u8>,
    /// B0 trap table: site → trampoline.
    pub traps: HashMap<u64, u64>,
    /// Cost model for one trap dispatch.
    pub trap_cost: u64,
    /// Cost of a near control-transfer instruction (others cost 1).
    pub branch_cost: u64,
    /// Cost of a far control-transfer instruction.
    pub far_branch_cost: u64,
    pub(crate) self_fd_phys: Option<PhysId>,
    icache: HashMap<u64, Insn>,
    icache_epoch: u64,
    exited: Option<i32>,
    history: std::collections::VecDeque<u64>,
}

/// Number of recent instruction pointers kept for diagnostics.
pub const HISTORY_LEN: usize = 16;

impl Default for Vm {
    fn default() -> Self {
        Vm::new()
    }
}

impl Vm {
    /// Fresh emulator with a bump heap and an empty address space.
    pub fn new() -> Vm {
        Vm {
            cpu: Cpu::new(),
            mem: Memory::new(),
            heap: Box::new(BumpHeap::new()),
            steps: 0,
            insns: 0,
            output: Vec::new(),
            traps: HashMap::new(),
            trap_cost: DEFAULT_TRAP_COST,
            branch_cost: DEFAULT_BRANCH_COST,
            far_branch_cost: DEFAULT_FAR_BRANCH_COST,
            self_fd_phys: None,
            icache: HashMap::new(),
            icache_epoch: 0,
            exited: None,
            history: std::collections::VecDeque::with_capacity(HISTORY_LEN),
        }
    }

    /// The last (up to [`HISTORY_LEN`]) instruction addresses executed,
    /// oldest first — a crash-dump aid when a rewritten binary faults.
    pub fn recent_rips(&self) -> Vec<u64> {
        self.history.iter().copied().collect()
    }

    /// Replace the heap backend (e.g. with the low-fat allocator).
    pub fn set_heap(&mut self, heap: Box<dyn HeapAllocator>) {
        self.heap = heap;
    }

    /// Has the guest called `exit`?
    pub fn exit_code(&self) -> Option<i32> {
        self.exited
    }

    fn fault(&self, fault: Fault) -> VmError {
        VmError::Fault {
            fault,
            rip: self.cpu.rip,
        }
    }

    // ---- operand helpers ---------------------------------------------

    fn effective_addr(&self, insn: &Insn, mem: &MemOperand) -> u64 {
        let mut a = mem.disp as i64 as u64;
        if mem.rip_relative {
            a = a.wrapping_add(insn.end());
        }
        if let Some(b) = mem.base {
            a = a.wrapping_add(self.cpu.get(b));
        }
        if let Some((i, s)) = mem.index {
            a = a.wrapping_add(self.cpu.get(i).wrapping_mul(s as u64));
        }
        a
    }

    fn read_rm(&self, insn: &Insn, w: Width) -> Result<u64, VmError> {
        let m = insn.modrm.expect("modrm operand");
        match m.mem {
            Some(mem) => {
                let a = self.effective_addr(insn, &mem);
                self.mem.read_le(a, w.bytes()).map_err(|f| self.fault(f))
            }
            None => Ok(self.cpu.get_w(m.rm, w, insn.prefixes.rex.is_some())),
        }
    }

    fn write_rm(&mut self, insn: &Insn, w: Width, v: u64) -> Result<(), VmError> {
        let m = insn.modrm.expect("modrm operand");
        match m.mem {
            Some(mem) => {
                let a = self.effective_addr(insn, &mem);
                self.mem
                    .write_le(a, v, w.bytes())
                    .map_err(|f| self.fault(f))
            }
            None => {
                self.cpu.set_w(m.rm, w, insn.prefixes.rex.is_some(), v);
                Ok(())
            }
        }
    }

    fn reg_field(&self, insn: &Insn, w: Width) -> u64 {
        let m = insn.modrm.expect("modrm operand");
        self.cpu.get_w(m.reg, w, insn.prefixes.rex.is_some())
    }

    fn set_reg_field(&mut self, insn: &Insn, w: Width, v: u64) {
        let m = insn.modrm.expect("modrm operand");
        self.cpu.set_w(m.reg, w, insn.prefixes.rex.is_some(), v);
    }

    /// Opcode-embedded register (push/pop/mov-imm): low 3 opcode bits plus
    /// REX.B.
    fn opcode_reg(insn: &Insn, op: u8) -> u8 {
        (op & 7) | if insn.prefixes.rex_b() { 8 } else { 0 }
    }

    // ---- stack helpers -------------------------------------------------

    fn push(&mut self, v: u64) -> Result<(), VmError> {
        let rsp = self.cpu.get(Reg::Rsp).wrapping_sub(8);
        self.cpu.set(Reg::Rsp, rsp);
        self.mem.write_le(rsp, v, 8).map_err(|f| self.fault(f))
    }

    fn pop(&mut self) -> Result<u64, VmError> {
        let rsp = self.cpu.get(Reg::Rsp);
        let v = self.mem.read_le(rsp, 8).map_err(|f| self.fault(f))?;
        self.cpu.set(Reg::Rsp, rsp.wrapping_add(8));
        Ok(v)
    }

    // ---- ALU -------------------------------------------------------------

    fn alu_add(&mut self, a: u64, b: u64, w: Width) -> u64 {
        let r = a.wrapping_add(b) & w.mask();
        let (am, bm) = (a & w.mask(), b & w.mask());
        self.cpu.flags.cf = ((am as u128) + (bm as u128)) >> w.bits() != 0;
        let sign = 1u64 << (w.bits() - 1);
        self.cpu.flags.of = !(am ^ bm) & (am ^ r) & sign != 0;
        self.cpu.flags.set_result(r, w);
        r
    }

    fn alu_sub(&mut self, a: u64, b: u64, w: Width) -> u64 {
        let (am, bm) = (a & w.mask(), b & w.mask());
        let r = am.wrapping_sub(bm) & w.mask();
        self.cpu.flags.cf = am < bm;
        let sign = 1u64 << (w.bits() - 1);
        self.cpu.flags.of = (am ^ bm) & (am ^ r) & sign != 0;
        self.cpu.flags.set_result(r, w);
        r
    }

    fn alu_logic(&mut self, op: u8, a: u64, b: u64, w: Width) -> u64 {
        let r = match op {
            1 => a | b,
            4 => a & b,
            6 => a ^ b,
            _ => unreachable!("logic op {op}"),
        } & w.mask();
        self.cpu.flags.cf = false;
        self.cpu.flags.of = false;
        self.cpu.flags.set_result(r, w);
        r
    }

    /// Dispatch an ALU group operation by index (add/or/adc/sbb/and/sub/
    /// xor/cmp). Returns `Some(result)` when the destination should be
    /// written (cmp returns `None`).
    fn alu_group(&mut self, idx: u8, a: u64, b: u64, w: Width) -> Option<u64> {
        match idx {
            0 => Some(self.alu_add(a, b, w)),
            1 | 4 | 6 => Some(self.alu_logic(idx, a, b, w)),
            2 => {
                let c = self.cpu.flags.cf as u64;
                let am = a & w.mask();
                let bm = b & w.mask();
                let r = am.wrapping_add(bm).wrapping_add(c) & w.mask();
                let wide = (am as u128) + (bm as u128) + c as u128;
                self.cpu.flags.cf = wide >> w.bits() != 0;
                let sign = 1u64 << (w.bits() - 1);
                self.cpu.flags.of = !(am ^ bm) & (am ^ r) & sign != 0;
                self.cpu.flags.set_result(r, w);
                Some(r)
            }
            3 => {
                let c = self.cpu.flags.cf as u64;
                let am = a & w.mask();
                let bm = b & w.mask();
                let r = am.wrapping_sub(bm).wrapping_sub(c) & w.mask();
                self.cpu.flags.cf = (am as u128) < (bm as u128 + c as u128);
                let sign = 1u64 << (w.bits() - 1);
                self.cpu.flags.of = (am ^ bm) & (am ^ r) & sign != 0;
                self.cpu.flags.set_result(r, w);
                Some(r)
            }
            5 => Some(self.alu_sub(a, b, w)),
            7 => {
                self.alu_sub(a, b, w);
                None
            }
            _ => unreachable!(),
        }
    }

    fn eval_cond(&self, c: Cond) -> bool {
        let f = &self.cpu.flags;
        match c {
            Cond::O => f.of,
            Cond::No => !f.of,
            Cond::B => f.cf,
            Cond::Ae => !f.cf,
            Cond::E => f.zf,
            Cond::Ne => !f.zf,
            Cond::Be => f.cf || f.zf,
            Cond::A => !f.cf && !f.zf,
            Cond::S => f.sf,
            Cond::Ns => !f.sf,
            Cond::P => f.pf,
            Cond::Np => !f.pf,
            Cond::L => f.sf != f.of,
            Cond::Ge => f.sf == f.of,
            Cond::Le => f.zf || (f.sf != f.of),
            Cond::G => !f.zf && (f.sf == f.of),
        }
    }

    // ---- syscalls --------------------------------------------------------

    fn ensure_heap_pages(&mut self, lo: u64, hi: u64) {
        let mut page = lo & !(PAGE_SIZE - 1);
        while page < hi {
            if !self.mem.is_mapped(page) {
                self.mem.map_anon(page, PAGE_SIZE, Perms::RW);
            }
            page += PAGE_SIZE;
        }
    }

    fn syscall(&mut self) -> Result<(), VmError> {
        let nr = self.cpu.get(Reg::Rax);
        let a0 = self.cpu.get(Reg::Rdi);
        let a1 = self.cpu.get(Reg::Rsi);
        let a2 = self.cpu.get(Reg::Rdx);
        let ret: u64 = match nr {
            // write(fd, buf, len) — capture fd 1/2.
            1 => {
                if a0 == 1 || a0 == 2 {
                    for i in 0..a2 {
                        let b = self.mem.read8(a1 + i).map_err(|f| self.fault(f))?;
                        self.output.push(b);
                    }
                }
                a2
            }
            // mmap(addr, len, prot, flags, fd, off).
            9 => {
                let fd = self.cpu.get(Reg::R8) as i64;
                let off = self.cpu.get(Reg::R9);
                let perms = Perms {
                    r: a2 & 1 != 0,
                    w: a2 & 2 != 0,
                    x: a2 & 4 != 0,
                };
                if fd == crate::load::SELF_FD as i64 {
                    let phys = self
                        .self_fd_phys
                        .expect("binary image registered as fd 100");
                    self.mem.map_file(a0, phys, off, a1, perms);
                } else if fd < 0 {
                    self.mem.map_anon(a0, a1, perms);
                } else {
                    return Err(VmError::BadSyscall(nr));
                }
                a0
            }
            // exit / exit_group.
            60 | 231 => {
                self.exited = Some(a0 as i32);
                0
            }
            SYS_MALLOC => {
                let p = self.heap.malloc(a0);
                if p != 0 {
                    self.ensure_heap_pages(p.saturating_sub(16), p + a0.max(1) + 16);
                }
                p
            }
            SYS_FREE => {
                self.heap.free(a0);
                0
            }
            _ => return Err(VmError::BadSyscall(nr)),
        };
        self.cpu.set(Reg::Rax, ret);
        // syscall clobbers rcx (return rip) and r11 (rflags).
        self.cpu.set(Reg::Rcx, self.cpu.rip);
        self.cpu.set(Reg::R11, self.cpu.flags.to_rflags());
        Ok(())
    }

    // ---- main loop -------------------------------------------------------

    fn decode_at(&mut self, rip: u64) -> Result<Insn, VmError> {
        if self.icache_epoch != self.mem.epoch {
            self.icache.clear();
            self.icache_epoch = self.mem.epoch;
        }
        if let Some(i) = self.icache.get(&rip) {
            return Ok(*i);
        }
        let bytes = self.mem.fetch(rip).map_err(|f| self.fault(f))?;
        let insn = e9x86::decode(&bytes, rip).map_err(|e| VmError::Decode {
            rip,
            msg: format!("{e} (bytes {bytes:02x?})"),
        })?;
        self.icache.insert(rip, insn);
        Ok(insn)
    }

    /// Execute one instruction. Returns `false` once the guest has exited.
    ///
    /// # Errors
    ///
    /// Any fault, decode failure, unsupported instruction or bad syscall.
    pub fn step(&mut self) -> Result<bool, VmError> {
        if self.exited.is_some() {
            return Ok(false);
        }
        let rip = self.cpu.rip;
        if self.history.len() == HISTORY_LEN {
            self.history.pop_front();
        }
        self.history.push_back(rip);
        let insn = self.decode_at(rip)?;
        self.insns += 1;
        let mut next = insn.end();
        let w = insn.width;

        match insn.opcode {
            // ---- ALU families --------------------------------------
            Opcode::One(op) if op < 0x40 && (op & 7) < 6 && !matches!(op & 7, 6 | 7) => {
                let idx = op >> 3;
                match op & 7 {
                    0 | 1 => {
                        // r/m ←op reg
                        let a = self.read_rm(&insn, w)?;
                        let b = self.reg_field(&insn, w);
                        if let Some(r) = self.alu_group(idx, a, b, w) {
                            self.write_rm(&insn, w, r)?;
                        }
                    }
                    2 | 3 => {
                        // reg ←op r/m
                        let a = self.reg_field(&insn, w);
                        let b = self.read_rm(&insn, w)?;
                        if let Some(r) = self.alu_group(idx, a, b, w) {
                            self.set_reg_field(&insn, w, r);
                        }
                    }
                    4 | 5 => {
                        // al/eax ←op imm
                        let a = self.cpu.get_w(0, w, true);
                        let b = insn.imm as u64;
                        if let Some(r) = self.alu_group(idx, a, b, w) {
                            self.cpu.set_w(0, w, true, r);
                        }
                    }
                    _ => unreachable!(),
                }
            }
            // Immediate group 1 (80/81/83).
            Opcode::One(0x80 | 0x81 | 0x83) => {
                let m = insn.modrm.unwrap();
                let a = self.read_rm(&insn, w)?;
                let b = insn.imm as u64;
                if let Some(r) = self.alu_group(m.reg & 7, a, b, w) {
                    self.write_rm(&insn, w, r)?;
                }
            }
            // test r/m, reg.
            Opcode::One(0x84 | 0x85) => {
                let a = self.read_rm(&insn, w)?;
                let b = self.reg_field(&insn, w);
                self.alu_logic(4, a, b, w);
            }
            // xchg r/m, reg.
            Opcode::One(0x86 | 0x87) => {
                let a = self.read_rm(&insn, w)?;
                let b = self.reg_field(&insn, w);
                self.write_rm(&insn, w, b)?;
                self.set_reg_field(&insn, w, a);
            }
            // mov.
            Opcode::One(0x88 | 0x89) => {
                let v = self.reg_field(&insn, w);
                self.write_rm(&insn, w, v)?;
            }
            Opcode::One(0x8A | 0x8B) => {
                let v = self.read_rm(&insn, w)?;
                self.set_reg_field(&insn, w, v);
            }
            // lea.
            Opcode::One(0x8D) => {
                let m = insn.modrm.unwrap();
                let mem = m.mem.expect("lea requires memory form");
                let a = self.effective_addr(&insn, &mem);
                self.set_reg_field(&insn, w, a);
            }
            // pop r/m.
            Opcode::One(0x8F) => {
                let v = self.pop()?;
                self.write_rm(&insn, Width::Q, v)?;
            }
            // movsxd.
            Opcode::One(0x63) => {
                let v = self.read_rm(&insn, Width::D)?;
                self.set_reg_field(&insn, w, Width::D.sext(v) as u64);
            }
            // push/pop r64.
            Opcode::One(op @ 0x50..=0x57) => {
                let r = Self::opcode_reg(&insn, op);
                let v = self.cpu.get_w(r, Width::Q, true);
                self.push(v)?;
            }
            Opcode::One(op @ 0x58..=0x5F) => {
                let r = Self::opcode_reg(&insn, op);
                let v = self.pop()?;
                self.cpu.set_w(r, Width::Q, true, v);
            }
            // push imm.
            Opcode::One(0x68 | 0x6A) => self.push(insn.imm as u64)?,
            // imul reg ← r/m * imm.
            Opcode::One(0x69 | 0x6B) => {
                let a = self.read_rm(&insn, w)? as i64;
                let r = w.sext(a as u64).wrapping_mul(insn.imm) as u64 & w.mask();
                self.cpu.flags.set_result(r, w);
                self.cpu.flags.cf = false;
                self.cpu.flags.of = false;
                self.set_reg_field(&insn, w, r);
            }
            // nop / xchg rax, r.
            Opcode::One(0x90) if !insn.prefixes.rex_b() => {}
            Opcode::One(op @ 0x90..=0x97) => {
                let r = Self::opcode_reg(&insn, op);
                let a = self.cpu.get_w(0, w, true);
                let b = self.cpu.get_w(r, w, true);
                self.cpu.set_w(0, w, true, b);
                self.cpu.set_w(r, w, true, a);
            }
            // cwde/cdqe.
            Opcode::One(0x98) => {
                let v = if w == Width::Q {
                    Width::D.sext(self.cpu.get(Reg::Rax)) as u64
                } else {
                    Width::W.sext(self.cpu.get(Reg::Rax)) as u64 & 0xFFFF_FFFF
                };
                self.cpu.set_w(0, w, true, v);
            }
            // cdq/cqo.
            Opcode::One(0x99) => {
                let sign = if w == Width::Q {
                    (self.cpu.get(Reg::Rax) as i64) >> 63
                } else {
                    ((self.cpu.get(Reg::Rax) as u32 as i32) >> 31) as i64
                };
                self.cpu.set_w(2, w, true, sign as u64);
            }
            // pushfq/popfq.
            Opcode::One(0x9C) => {
                let v = self.cpu.flags.to_rflags();
                self.push(v)?;
            }
            Opcode::One(0x9D) => {
                let v = self.pop()?;
                self.cpu.flags = Flags::from_rflags(v);
            }
            // test al/eax, imm.
            Opcode::One(0xA8 | 0xA9) => {
                let a = self.cpu.get_w(0, w, true);
                self.alu_logic(4, a, insn.imm as u64, w);
            }
            // mov r, imm.
            Opcode::One(op @ 0xB0..=0xBF) => {
                let r = Self::opcode_reg(&insn, op);
                self.cpu.set_w(r, w, insn.prefixes.rex.is_some(), insn.imm as u64);
            }
            // shift group 2.
            Opcode::One(op @ (0xC0 | 0xC1 | 0xD0 | 0xD1 | 0xD2 | 0xD3)) => {
                let m = insn.modrm.unwrap();
                let count = match op {
                    0xC0 | 0xC1 => insn.imm as u64,
                    0xD0 | 0xD1 => 1,
                    _ => self.cpu.get(Reg::Rcx),
                } & if w == Width::Q { 63 } else { 31 };
                let a = self.read_rm(&insn, w)?;
                let r = self.shift(m.reg & 7, a, count as u32, w, rip)?;
                self.write_rm(&insn, w, r)?;
            }
            // ret / ret imm16.
            Opcode::One(0xC3 | 0xC2) => {
                next = self.pop()?;
                if insn.imm != 0 {
                    let rsp = self.cpu.get(Reg::Rsp);
                    self.cpu.set(Reg::Rsp, rsp + insn.imm as u64);
                }
            }
            // mov r/m, imm.
            Opcode::One(0xC6 | 0xC7) => {
                self.write_rm(&insn, w, insn.imm as u64)?;
            }
            // leave.
            Opcode::One(0xC9) => {
                self.cpu.set(Reg::Rsp, self.cpu.get(Reg::Rbp));
                let v = self.pop()?;
                self.cpu.set(Reg::Rbp, v);
            }
            // int3 — B0 trap dispatch.
            Opcode::One(0xCC) => {
                let site = rip;
                match self.traps.get(&site) {
                    Some(&tramp) => {
                        self.steps += self.trap_cost;
                        next = tramp;
                    }
                    None => return Err(VmError::UnexpectedTrap(site)),
                }
            }
            // call rel32.
            Opcode::One(0xE8) => {
                self.push(insn.end())?;
                next = insn.branch_target().unwrap();
            }
            // jmp rel8/rel32, jcc rel8.
            Opcode::One(0xE9 | 0xEB) => next = insn.branch_target().unwrap(),
            // loop / loope / loopne / jrcxz.
            Opcode::One(op @ 0xE0..=0xE3) => {
                let taken = if op == 0xE3 {
                    self.cpu.get(Reg::Rcx) == 0
                } else {
                    let rcx = self.cpu.get(Reg::Rcx).wrapping_sub(1);
                    self.cpu.set(Reg::Rcx, rcx);
                    rcx != 0
                        && match op {
                            0xE0 => !self.cpu.flags.zf,
                            0xE1 => self.cpu.flags.zf,
                            _ => true,
                        }
                };
                if taken {
                    next = insn.branch_target().unwrap();
                }
            }
            Opcode::One(0x70..=0x7F) => {
                if let Kind::JccRel8(c) = insn.kind {
                    if self.eval_cond(c) {
                        next = insn.branch_target().unwrap();
                    }
                }
            }
            // group 3.
            Opcode::One(0xF6 | 0xF7) => {
                let m = insn.modrm.unwrap();
                match m.reg & 7 {
                    0 | 1 => {
                        let a = self.read_rm(&insn, w)?;
                        self.alu_logic(4, a, insn.imm as u64, w);
                    }
                    2 => {
                        let a = self.read_rm(&insn, w)?;
                        self.write_rm(&insn, w, !a & w.mask())?;
                    }
                    3 => {
                        let a = self.read_rm(&insn, w)?;
                        let r = self.alu_sub(0, a, w);
                        self.cpu.flags.cf = a & w.mask() != 0;
                        self.write_rm(&insn, w, r)?;
                    }
                    4 => {
                        // mul: rdx:rax = rax * r/m (flags approximated).
                        let a = self.cpu.get_w(0, w, true) as u128;
                        let b = self.read_rm(&insn, w)? as u128;
                        let r = a * b;
                        self.cpu.set_w(0, w, true, r as u64 & w.mask());
                        if w != Width::B {
                            self.cpu.set_w(2, w, true, (r >> w.bits()) as u64 & w.mask());
                        }
                        let hi = (r >> w.bits()) != 0;
                        self.cpu.flags.cf = hi;
                        self.cpu.flags.of = hi;
                    }
                    6 => {
                        // div: unsigned rdx:rax / r/m.
                        let d = self.read_rm(&insn, w)?;
                        if d == 0 {
                            return Err(VmError::Unsupported {
                                rip,
                                msg: "divide by zero".into(),
                            });
                        }
                        let lo = self.cpu.get_w(0, w, true) as u128;
                        let hi = if w == Width::B {
                            (self.cpu.get(Reg::Rax) >> 8 & 0xFF) as u128
                        } else {
                            self.cpu.get_w(2, w, true) as u128
                        };
                        let n = (hi << w.bits()) | lo;
                        let q = n / d as u128;
                        let r = n % d as u128;
                        self.cpu.set_w(0, w, true, q as u64 & w.mask());
                        if w == Width::B {
                            let rax = self.cpu.get(Reg::Rax);
                            self.cpu
                                .set(Reg::Rax, (rax & !0xFF00) | ((r as u64 & 0xFF) << 8));
                        } else {
                            self.cpu.set_w(2, w, true, r as u64 & w.mask());
                        }
                    }
                    other => {
                        return Err(VmError::Unsupported {
                            rip,
                            msg: format!("group3 /{other}"),
                        })
                    }
                }
            }
            // group 4/5.
            Opcode::One(0xFE | 0xFF) => {
                let m = insn.modrm.unwrap();
                match (insn.opcode, m.reg & 7) {
                    (Opcode::One(_), 0) => {
                        // inc (CF preserved).
                        let a = self.read_rm(&insn, w)?;
                        let cf = self.cpu.flags.cf;
                        let r = self.alu_add(a, 1, w);
                        self.cpu.flags.cf = cf;
                        self.write_rm(&insn, w, r)?;
                    }
                    (Opcode::One(_), 1) => {
                        let a = self.read_rm(&insn, w)?;
                        let cf = self.cpu.flags.cf;
                        let r = self.alu_sub(a, 1, w);
                        self.cpu.flags.cf = cf;
                        self.write_rm(&insn, w, r)?;
                    }
                    (Opcode::One(0xFF), 2) => {
                        // call r/m64.
                        let t = self.read_rm(&insn, Width::Q)?;
                        self.push(insn.end())?;
                        next = t;
                    }
                    (Opcode::One(0xFF), 4) => {
                        next = self.read_rm(&insn, Width::Q)?;
                    }
                    (Opcode::One(0xFF), 6) => {
                        let v = self.read_rm(&insn, Width::Q)?;
                        self.push(v)?;
                    }
                    (_, other) => {
                        return Err(VmError::Unsupported {
                            rip,
                            msg: format!("group5 /{other}"),
                        })
                    }
                }
            }
            // Long NOPs and prefetch hints.
            Opcode::TwoOf(0x1F) | Opcode::TwoOf(0x18) | Opcode::TwoOf(0x0D) => {}
            // syscall.
            Opcode::TwoOf(0x05) => self.syscall()?,
            // cmovcc.
            Opcode::TwoOf(op @ 0x40..=0x4F) => {
                let v = self.read_rm(&insn, w)?;
                if self.eval_cond(Cond::from_nibble(op & 0xF)) {
                    self.set_reg_field(&insn, w, v);
                } else if w == Width::D {
                    // 32-bit cmov still zero-extends the destination.
                    let cur = self.reg_field(&insn, Width::D);
                    self.set_reg_field(&insn, Width::D, cur);
                }
            }
            // jcc rel32.
            Opcode::TwoOf(0x80..=0x8F) => {
                if let Kind::JccRel32(c) = insn.kind {
                    if self.eval_cond(c) {
                        next = insn.branch_target().unwrap();
                    }
                }
            }
            // setcc.
            Opcode::TwoOf(op @ 0x90..=0x9F) => {
                let v = self.eval_cond(Cond::from_nibble(op & 0xF)) as u64;
                self.write_rm(&insn, Width::B, v)?;
            }
            // imul reg, r/m.
            Opcode::TwoOf(0xAF) => {
                let a = w.sext(self.reg_field(&insn, w));
                let b = w.sext(self.read_rm(&insn, w)?);
                let r = a.wrapping_mul(b) as u64 & w.mask();
                self.cpu.flags.set_result(r, w);
                self.cpu.flags.cf = false;
                self.cpu.flags.of = false;
                self.set_reg_field(&insn, w, r);
            }
            // movzx / movsx.
            Opcode::TwoOf(0xB6) => {
                let v = self.read_rm(&insn, Width::B)?;
                self.set_reg_field(&insn, w, v);
            }
            Opcode::TwoOf(0xB7) => {
                let v = self.read_rm(&insn, Width::W)?;
                self.set_reg_field(&insn, w, v);
            }
            Opcode::TwoOf(0xBE) => {
                let v = self.read_rm(&insn, Width::B)?;
                self.set_reg_field(&insn, w, Width::B.sext(v) as u64 & w.mask());
            }
            Opcode::TwoOf(0xBF) => {
                let v = self.read_rm(&insn, Width::W)?;
                self.set_reg_field(&insn, w, Width::W.sext(v) as u64 & w.mask());
            }
            // ud2 and anything else: unsupported.
            _ => {
                return Err(VmError::Unsupported {
                    rip,
                    msg: format!("{insn}"),
                })
            }
        }

        // Cost model: plain instructions cost 1; control transfers cost
        // more, scaled by how far they land (trampoline round trips are
        // far by construction).
        self.steps += match insn.kind {
            Kind::Other | Kind::Int3 | Kind::Syscall => 1,
            _ => {
                if next.abs_diff(insn.end()) > FAR_BRANCH_DISTANCE {
                    self.far_branch_cost
                } else {
                    self.branch_cost
                }
            }
        };

        self.cpu.rip = next;
        Ok(self.exited.is_none())
    }

    fn shift(&mut self, ext: u8, a: u64, count: u32, w: Width, rip: u64) -> Result<u64, VmError> {
        if count == 0 {
            return Ok(a & w.mask());
        }
        let bits = w.bits();
        let am = a & w.mask();
        let r = match ext {
            4 => {
                // shl
                self.cpu.flags.cf = count <= bits && (am >> (bits - count)) & 1 == 1;
                (am << count) & w.mask()
            }
            5 => {
                // shr
                self.cpu.flags.cf = (am >> (count - 1)) & 1 == 1;
                am >> count
            }
            7 => {
                // sar
                let s = w.sext(am);
                self.cpu.flags.cf = (s >> (count - 1).min(63)) & 1 == 1;
                (s >> count.min(63)) as u64 & w.mask()
            }
            0 => {
                // rol
                let c = count % bits;
                if c == 0 {
                    am
                } else {
                    ((am << c) | (am >> (bits - c))) & w.mask()
                }
            }
            1 => {
                // ror
                let c = count % bits;
                if c == 0 {
                    am
                } else {
                    ((am >> c) | (am << (bits - c))) & w.mask()
                }
            }
            other => {
                return Err(VmError::Unsupported {
                    rip,
                    msg: format!("shift group /{other}"),
                })
            }
        };
        if matches!(ext, 4 | 5 | 7) {
            self.cpu.flags.set_result(r, w);
        }
        Ok(r)
    }

    /// Run until guest exit or `max_steps` cost units.
    ///
    /// # Errors
    ///
    /// Propagates [`Vm::step`] errors; [`VmError::StepLimit`] if the budget
    /// is exhausted first.
    pub fn run(&mut self, max_steps: u64) -> Result<RunResult, VmError> {
        while self.exited.is_none() {
            if self.steps >= max_steps {
                return Err(VmError::StepLimit(max_steps));
            }
            self.step()?;
        }
        Ok(RunResult {
            exit_code: self.exited.unwrap_or(0),
            steps: self.steps,
            insns: self.insns,
            output: self.output.clone(),
        })
    }
}
