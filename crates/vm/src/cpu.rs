//! Register file and flags.

use e9x86::reg::{Reg, Width};

/// Architectural flags the emulator models (AF is not tracked; none of the
/// generated workloads read it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flags {
    /// Carry.
    pub cf: bool,
    /// Zero.
    pub zf: bool,
    /// Sign.
    pub sf: bool,
    /// Overflow.
    pub of: bool,
    /// Parity (of the low result byte).
    pub pf: bool,
}

impl Flags {
    /// Encode as an RFLAGS image (for `pushfq`).
    pub fn to_rflags(self) -> u64 {
        let mut v: u64 = 0x2; // reserved bit 1 is always set
        if self.cf {
            v |= 1 << 0;
        }
        if self.pf {
            v |= 1 << 2;
        }
        if self.zf {
            v |= 1 << 6;
        }
        if self.sf {
            v |= 1 << 7;
        }
        if self.of {
            v |= 1 << 11;
        }
        v
    }

    /// Decode from an RFLAGS image (for `popfq`).
    pub fn from_rflags(v: u64) -> Flags {
        Flags {
            cf: v & (1 << 0) != 0,
            pf: v & (1 << 2) != 0,
            zf: v & (1 << 6) != 0,
            sf: v & (1 << 7) != 0,
            of: v & (1 << 11) != 0,
        }
    }

    /// Set ZF/SF/PF from a result at the given width (the common tail of
    /// every arithmetic instruction).
    pub fn set_result(&mut self, result: u64, w: Width) {
        let r = result & w.mask();
        self.zf = r == 0;
        self.sf = (r >> (w.bits() - 1)) & 1 == 1;
        self.pf = (r as u8).count_ones().is_multiple_of(2);
    }
}

/// The register file plus instruction pointer and flags.
#[derive(Debug, Clone, Default)]
pub struct Cpu {
    regs: [u64; 16],
    /// Instruction pointer.
    pub rip: u64,
    /// Flags.
    pub flags: Flags,
}

impl Cpu {
    /// Zeroed CPU.
    pub fn new() -> Cpu {
        Cpu::default()
    }

    /// Full 64-bit register read.
    #[inline]
    pub fn get(&self, r: Reg) -> u64 {
        self.regs[r.num() as usize]
    }

    /// Full 64-bit register write.
    #[inline]
    pub fn set(&mut self, r: Reg, v: u64) {
        self.regs[r.num() as usize] = v;
    }

    /// Width-sensitive register read by hardware number. `rex_present`
    /// selects between the legacy high-byte registers (ah/ch/dh/bh for
    /// numbers 4–7 without REX) and the uniform low-byte registers.
    pub fn get_w(&self, num: u8, w: Width, rex_present: bool) -> u64 {
        if w == Width::B && !rex_present && (4..8).contains(&num) {
            (self.regs[(num - 4) as usize] >> 8) & 0xFF
        } else {
            self.regs[num as usize] & w.mask()
        }
    }

    /// Width-sensitive register write. 32-bit writes zero-extend (the
    /// x86-64 rule); 8/16-bit writes merge.
    pub fn set_w(&mut self, num: u8, w: Width, rex_present: bool, v: u64) {
        match w {
            Width::Q => self.regs[num as usize] = v,
            Width::D => self.regs[num as usize] = v & 0xFFFF_FFFF,
            Width::W => {
                let old = self.regs[num as usize];
                self.regs[num as usize] = (old & !0xFFFF) | (v & 0xFFFF);
            }
            Width::B => {
                if !rex_present && (4..8).contains(&num) {
                    let i = (num - 4) as usize;
                    self.regs[i] = (self.regs[i] & !0xFF00) | ((v & 0xFF) << 8);
                } else {
                    let i = num as usize;
                    self.regs[i] = (self.regs[i] & !0xFF) | (v & 0xFF);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rflags_roundtrip() {
        let f = Flags {
            cf: true,
            zf: false,
            sf: true,
            of: true,
            pf: false,
        };
        assert_eq!(Flags::from_rflags(f.to_rflags()), f);
        // Reserved bit 1 is always set in the image.
        assert!(f.to_rflags() & 0x2 != 0);
    }

    #[test]
    fn result_flags() {
        let mut f = Flags::default();
        f.set_result(0, Width::Q);
        assert!(f.zf && !f.sf);
        f.set_result(0x8000_0000_0000_0000, Width::Q);
        assert!(!f.zf && f.sf);
        f.set_result(0x80, Width::B);
        assert!(f.sf);
        f.set_result(0x80, Width::D);
        assert!(!f.sf);
        // Parity of 0b11 = even → pf set.
        f.set_result(3, Width::B);
        assert!(f.pf);
        f.set_result(1, Width::B);
        assert!(!f.pf);
    }

    #[test]
    fn dword_write_zero_extends() {
        let mut c = Cpu::new();
        c.set(Reg::Rax, u64::MAX);
        c.set_w(0, Width::D, false, 0x1234);
        assert_eq!(c.get(Reg::Rax), 0x1234);
    }

    #[test]
    fn word_and_byte_writes_merge() {
        let mut c = Cpu::new();
        c.set(Reg::Rax, 0x1111_2222_3333_4444);
        c.set_w(0, Width::W, false, 0xABCD);
        assert_eq!(c.get(Reg::Rax), 0x1111_2222_3333_ABCD);
        c.set_w(0, Width::B, false, 0xEF);
        assert_eq!(c.get(Reg::Rax), 0x1111_2222_3333_ABEF);
    }

    #[test]
    fn high_byte_registers_without_rex() {
        let mut c = Cpu::new();
        c.set(Reg::Rax, 0xAABB);
        // num 4 without REX = %ah.
        assert_eq!(c.get_w(4, Width::B, false), 0xAA);
        c.set_w(4, Width::B, false, 0x77);
        assert_eq!(c.get(Reg::Rax), 0x77BB);
        // num 4 with REX = %spl.
        c.set(Reg::Rsp, 0x1234);
        assert_eq!(c.get_w(4, Width::B, true), 0x34);
    }
}
