//! ELF loading into the emulator.
//!
//! Mirrors the kernel loader closely enough for the reproduction:
//! `PT_LOAD` segments are mapped (read-only/executable segments *alias* the
//! file image — so a grouped physical block really is shared; writable
//! segments get private copies, i.e. `MAP_PRIVATE` copy semantics), the
//! `.bss` tail is zero-filled, a stack is mapped, and the file image is
//! registered as fd [`SELF_FD`] for the injected loader's `mmap` calls.
//! `PT_NOTE` segments are scanned for the B0 trap manifest.

use crate::exec::{Vm, STACK_SIZE, STACK_TOP};
use crate::mem::{Perms, PAGE_SIZE};
use e9elf::types::{PF_W, PF_X, PT_LOAD, PT_NOTE};
use e9elf::{Elf, ElfError};
use std::fmt;

/// File descriptor the injected loader maps the binary through.
pub const SELF_FD: u32 = 100;

/// Largest memory image one `PT_LOAD` segment may request. A hostile
/// `p_memsz` otherwise turns the per-page mapping loop into an OOM (one
/// page-table entry per page, plus a zeroed private buffer for writable
/// segments). Real workloads — chrome-scale profiles included — stay well
/// under this.
pub const MAX_SEGMENT_MEMSZ: u64 = 1 << 30;

/// Largest combined memory image across all `PT_LOAD` segments.
pub const MAX_TOTAL_MEMSZ: u64 = 1 << 32;

/// Loading error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// Malformed ELF.
    Elf(ElfError),
    /// A `PT_LOAD` segment's file range lies outside the binary image, its
    /// address range wraps, or `p_filesz > p_memsz`.
    SegmentBounds {
        /// The offending segment's virtual address.
        vaddr: u64,
    },
    /// A segment (or the whole image) asks for an implausible amount of
    /// memory — see [`MAX_SEGMENT_MEMSZ`] / [`MAX_TOTAL_MEMSZ`].
    SegmentTooBig {
        /// The offending segment's virtual address.
        vaddr: u64,
        /// Its requested memory size.
        memsz: u64,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Elf(e) => write!(f, "load failed: {e}"),
            LoadError::SegmentBounds { vaddr } => {
                write!(f, "load failed: segment at {vaddr:#x} out of file bounds")
            }
            LoadError::SegmentTooBig { vaddr, memsz } => write!(
                f,
                "load failed: segment at {vaddr:#x} requests {memsz:#x} bytes of memory"
            ),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<ElfError> for LoadError {
    fn from(e: ElfError) -> Self {
        LoadError::Elf(e)
    }
}

/// Validate one `PT_LOAD` header against the file image and the size caps
/// before anything is mapped. Returns the page-rounded memory length.
fn check_load_segment(ph: &e9elf::types::Phdr, file_len: usize, total: &mut u64) -> Result<u64, LoadError> {
    let bounds = LoadError::SegmentBounds { vaddr: ph.p_vaddr };
    // File range fully inside the image, and no more file than memory.
    let file_end = ph
        .p_offset
        .checked_add(ph.p_filesz)
        .ok_or(bounds.clone())?;
    if file_end > file_len as u64 || ph.p_filesz > ph.p_memsz {
        return Err(bounds.clone());
    }
    // Memory range must not wrap, even after page rounding.
    let mem_end = ph.p_vaddr.checked_add(ph.p_memsz).ok_or(bounds.clone())?;
    if mem_end.checked_add(0xFFF).is_none() {
        return Err(bounds);
    }
    if ph.p_memsz > MAX_SEGMENT_MEMSZ {
        return Err(LoadError::SegmentTooBig {
            vaddr: ph.p_vaddr,
            memsz: ph.p_memsz,
        });
    }
    let vbase = e9elf::page_floor(ph.p_vaddr);
    let mem_len = e9elf::page_ceil(mem_end) - vbase;
    *total = total.saturating_add(mem_len);
    if *total > MAX_TOTAL_MEMSZ {
        return Err(LoadError::SegmentTooBig {
            vaddr: ph.p_vaddr,
            memsz: ph.p_memsz,
        });
    }
    Ok(mem_len)
}

/// Load `binary` into `vm` and point `rip` at the entry point.
///
/// # Errors
///
/// Fails on malformed ELF input, on segments whose file or memory ranges
/// lie outside the image / wrap / exceed the size caps — never panics and
/// never maps anything for a rejected image.
pub fn load_elf(vm: &mut Vm, binary: &[u8]) -> Result<(), LoadError> {
    let elf = Elf::parse(binary)?;
    // Validate every loadable segment up front: rejection must be atomic
    // (no partially-mapped VM).
    let mut total = 0u64;
    for ph in &elf.phdrs {
        if ph.p_type == PT_LOAD {
            check_load_segment(ph, binary.len(), &mut total)?;
        }
    }
    let file_phys = vm.mem.add_phys(binary.to_vec());
    vm.self_fd_phys = Some(file_phys);

    for ph in &elf.phdrs {
        match ph.p_type {
            PT_LOAD => {
                let perms = Perms {
                    r: true,
                    w: ph.p_flags & PF_W != 0,
                    x: ph.p_flags & PF_X != 0,
                };
                let vbase = e9elf::page_floor(ph.p_vaddr);
                let head = ph.p_vaddr - vbase;
                let mem_len = e9elf::page_ceil(ph.p_vaddr + ph.p_memsz) - vbase;
                if perms.w {
                    // Private copy: file bytes + zero-filled bss tail.
                    let mut buf = vec![0u8; mem_len as usize];
                    let fo = ph.p_offset as usize;
                    let fsz = ph.p_filesz as usize;
                    if fsz > 0 {
                        buf[head as usize..head as usize + fsz]
                            .copy_from_slice(&binary[fo..fo + fsz]);
                    }
                    let phys = vm.mem.add_phys(buf);
                    vm.mem.map_file(vbase, phys, 0, mem_len, perms);
                } else {
                    // Alias the file image directly (shared, like the
                    // kernel's page-cache mapping).
                    let off = e9elf::page_floor(ph.p_offset);
                    let file_len = e9elf::page_ceil(ph.p_offset + ph.p_filesz) - off;
                    vm.mem.map_file(vbase, file_phys, off, file_len, perms);
                    // Zero tail beyond the file-backed pages (rare for R/X
                    // segments; map anon zero pages).
                    if mem_len > file_len {
                        vm.mem
                            .map_anon(vbase + file_len, mem_len - file_len, perms);
                    }
                }
            }
            PT_NOTE => {
                // Untrusted offsets: a wrapped or out-of-file note range is
                // silently skipped (notes are advisory, not loadable).
                let note = usize::try_from(ph.p_offset)
                    .ok()
                    .zip(usize::try_from(ph.p_filesz).ok())
                    .and_then(|(lo, sz)| binary.get(lo..lo.checked_add(sz)?));
                if let Some(traps) = note.and_then(e9patch::rewriter::manifest::decode) {
                    vm.traps.extend(traps);
                }
            }
            _ => {}
        }
    }

    // Stack.
    vm.mem
        .map_anon(STACK_TOP - STACK_SIZE, STACK_SIZE, Perms::RW);
    vm.cpu.set(e9x86::Reg::Rsp, STACK_TOP - PAGE_SIZE);
    vm.cpu.rip = elf.entry();
    Ok(())
}

/// Convenience: load and run a binary, returning the run result.
///
/// # Errors
///
/// Propagates load and execution errors (boxed, since they are different
/// types).
pub fn run_binary(
    binary: &[u8],
    max_steps: u64,
) -> Result<crate::exec::RunResult, Box<dyn std::error::Error>> {
    let mut vm = Vm::new();
    load_elf(&mut vm, binary)?;
    Ok(vm.run(max_steps)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use e9elf::build::ElfBuilder;
    use e9x86::asm::{Asm, Mem};
    use e9x86::reg::{Reg, Width};

    /// Assemble a tiny program: exit(42).
    fn exit42() -> Vec<u8> {
        let mut a = Asm::new(0x401000);
        a.mov_ri32(Reg::Rax, 60);
        a.mov_ri32(Reg::Rdi, 42);
        a.syscall();
        let code = a.finish().unwrap();
        let mut b = ElfBuilder::exec(0x400000);
        b.text(code, 0x401000);
        b.entry(0x401000);
        b.build()
    }

    #[test]
    fn run_exit42() {
        let r = run_binary(&exit42(), 1000).unwrap();
        assert_eq!(r.exit_code, 42);
        assert_eq!(r.insns, 3);
    }

    #[test]
    fn write_syscall_captures_output() {
        let mut a = Asm::new(0x401000);
        let msg = a.fresh_label();
        a.lea(Reg::Rsi, Mem::rip(msg));
        a.mov_ri32(Reg::Rax, 1);
        a.mov_ri32(Reg::Rdi, 1);
        a.mov_ri32(Reg::Rdx, 5);
        a.syscall();
        a.mov_ri32(Reg::Rax, 60);
        a.mov_ri32(Reg::Rdi, 0);
        a.syscall();
        a.bind(msg);
        a.raw(b"hello");
        let code = a.finish().unwrap();
        let mut b = ElfBuilder::exec(0x400000);
        b.text(code, 0x401000);
        b.entry(0x401000);
        let r = run_binary(&b.build(), 1000).unwrap();
        assert_eq!(r.output, b"hello");
        assert_eq!(r.exit_code, 0);
    }

    #[test]
    fn writable_data_is_private() {
        // Store to .data, read back, exit with the value.
        let mut a = Asm::new(0x401000);
        a.mov_ri64(Reg::Rbx, 0x403000);
        a.mov_mi(Width::Q, Mem::base(Reg::Rbx), 7);
        a.add_mr(Width::Q, Mem::base(Reg::Rbx), Reg::Rbx); // data += rbx
        a.mov_rm(Width::Q, Reg::Rdi, Mem::base(Reg::Rbx));
        a.sub_ri(Width::Q, Reg::Rdi, 0x403000);
        a.mov_ri32(Reg::Rax, 60);
        a.syscall();
        let code = a.finish().unwrap();
        let mut b = ElfBuilder::exec(0x400000);
        b.text(code, 0x401000);
        b.data(vec![0; 16], 0x403000);
        b.entry(0x401000);
        let r = run_binary(&b.build(), 1000).unwrap();
        assert_eq!(r.exit_code, 7);
    }

    #[test]
    fn bss_is_zeroed() {
        let mut a = Asm::new(0x401000);
        a.mov_ri64(Reg::Rbx, 0x500000);
        a.mov_rm(Width::Q, Reg::Rdi, Mem::base(Reg::Rbx));
        a.mov_ri32(Reg::Rax, 60);
        a.syscall();
        let code = a.finish().unwrap();
        let mut b = ElfBuilder::exec(0x400000);
        b.text(code, 0x401000);
        b.bss(0x2000, 0x500000);
        b.entry(0x401000);
        let r = run_binary(&b.build(), 1000).unwrap();
        assert_eq!(r.exit_code, 0);
    }

    #[test]
    fn stack_works() {
        let mut a = Asm::new(0x401000);
        let f = a.fresh_label();
        a.mov_ri32(Reg::Rdi, 5);
        a.call(f);
        a.mov_ri32(Reg::Rax, 60);
        a.syscall();
        a.bind(f);
        a.push_r(Reg::Rdi);
        a.pop_r(Reg::Rdi);
        a.add_ri(Width::Q, Reg::Rdi, 1);
        a.ret();
        let code = a.finish().unwrap();
        let mut b = ElfBuilder::exec(0x400000);
        b.text(code, 0x401000);
        b.entry(0x401000);
        let r = run_binary(&b.build(), 1000).unwrap();
        assert_eq!(r.exit_code, 6);
    }

    #[test]
    fn heap_pseudo_syscalls() {
        // p = malloc(64); *p = 9; exit(*p).
        let mut a = Asm::new(0x401000);
        a.mov_ri64(Reg::Rax, crate::exec::SYS_MALLOC as i64);
        a.mov_ri32(Reg::Rdi, 64);
        a.syscall();
        a.mov_rr(Width::Q, Reg::Rbx, Reg::Rax);
        a.mov_mi(Width::Q, Mem::base(Reg::Rbx), 9);
        a.mov_rm(Width::Q, Reg::Rdi, Mem::base(Reg::Rbx));
        a.mov_ri64(Reg::Rax, crate::exec::SYS_FREE as i64);
        a.mov_rr(Width::Q, Reg::Rdi, Reg::Rbx); // free(p) — clobbers rdi
        a.syscall();
        a.mov_rm(Width::Q, Reg::Rdi, Mem::base(Reg::Rbx));
        a.mov_ri32(Reg::Rax, 60);
        a.syscall();
        let code = a.finish().unwrap();
        let mut b = ElfBuilder::exec(0x400000);
        b.text(code, 0x401000);
        b.entry(0x401000);
        let r = run_binary(&b.build(), 1000).unwrap();
        assert_eq!(r.exit_code, 9);
    }

    #[test]
    fn step_limit_enforced() {
        // Infinite loop.
        let mut a = Asm::new(0x401000);
        let top = a.fresh_label();
        a.bind(top);
        a.jmp(top);
        let code = a.finish().unwrap();
        let mut b = ElfBuilder::exec(0x400000);
        b.text(code, 0x401000);
        b.entry(0x401000);
        let mut vm = Vm::new();
        load_elf(&mut vm, &b.build()).unwrap();
        assert!(matches!(vm.run(100), Err(crate::exec::VmError::StepLimit(_))));
    }
}
