//! Guest heap allocators.
//!
//! The emulator services guest `malloc`/`free` through pseudo-syscalls (see
//! `exec`), pluggable so the heap-hardening experiment can swap in the
//! low-fat allocator. Allocation *policy* lives here; the *instrumentation
//! path* under test (trampoline → check function → table lookup) runs as
//! real guest x86 code.

use std::fmt;

/// A guest heap implementation.
pub trait HeapAllocator: fmt::Debug {
    /// Allocate `size` bytes; returns the guest pointer (0 on failure).
    fn malloc(&mut self, size: u64) -> u64;
    /// Free a previous allocation (pointers not from `malloc` are ignored).
    fn free(&mut self, ptr: u64);
    /// Range of guest addresses this heap hands out (used by the emulator
    /// to lazily map pages).
    fn range(&self) -> (u64, u64);
}

/// Base address of the default bump heap — far above the binary image and
/// any trampoline the rewriter can place.
pub const BUMP_HEAP_BASE: u64 = 0x6000_0000_0000;
/// Default bump-heap capacity.
pub const BUMP_HEAP_SIZE: u64 = 1 << 32;

/// A simple bump allocator with 16-byte alignment and free-list-free
/// `free` (allocations are never reused; ample for the bounded synthetic
/// workloads).
#[derive(Debug)]
pub struct BumpHeap {
    base: u64,
    next: u64,
    end: u64,
    /// Number of `malloc` calls served.
    pub allocs: u64,
    /// Number of `free` calls observed.
    pub frees: u64,
}

impl BumpHeap {
    /// Bump heap at the default base.
    pub fn new() -> BumpHeap {
        BumpHeap::with_range(BUMP_HEAP_BASE, BUMP_HEAP_SIZE)
    }

    /// Bump heap over `[base, base+size)`.
    pub fn with_range(base: u64, size: u64) -> BumpHeap {
        BumpHeap {
            base,
            next: base + 16,
            end: base + size,
            allocs: 0,
            frees: 0,
        }
    }
}

impl Default for BumpHeap {
    fn default() -> Self {
        BumpHeap::new()
    }
}

impl HeapAllocator for BumpHeap {
    fn malloc(&mut self, size: u64) -> u64 {
        let sz = size.max(1).next_multiple_of(16);
        if self.next + sz > self.end {
            return 0;
        }
        let p = self.next;
        self.next += sz + 16; // 16-byte gap between objects
        self.allocs += 1;
        p
    }

    fn free(&mut self, _ptr: u64) {
        self.frees += 1;
    }

    fn range(&self) -> (u64, u64) {
        (self.base, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_alloc_is_aligned_and_disjoint() {
        let mut h = BumpHeap::new();
        let a = h.malloc(10);
        let b = h.malloc(100);
        assert_eq!(a % 16, 0);
        assert_eq!(b % 16, 0);
        assert!(b >= a + 16);
        assert_eq!(h.allocs, 2);
    }

    #[test]
    fn zero_size_allocations_still_distinct() {
        let mut h = BumpHeap::new();
        let a = h.malloc(0);
        let b = h.malloc(0);
        assert_ne!(a, b);
        assert_ne!(a, 0);
    }

    #[test]
    fn exhaustion_returns_null() {
        let mut h = BumpHeap::with_range(0x1000, 64);
        assert_ne!(h.malloc(16), 0);
        assert_eq!(h.malloc(1 << 20), 0);
    }

    #[test]
    fn free_is_counted() {
        let mut h = BumpHeap::new();
        let p = h.malloc(8);
        h.free(p);
        assert_eq!(h.frees, 1);
    }
}
