//! Paged virtual memory with aliased (one-to-many) file-backed mappings.
//!
//! Physical page grouping (§4 of the paper) only works if one physical
//! extent can appear at several virtual addresses. The memory model here
//! mirrors `mmap` semantics closely enough to validate that: *physical
//! buffers* (the binary file image, anonymous zero memory) are mapped into
//! pages of a 64-bit virtual space, and the same file extent may back any
//! number of virtual pages.

use std::collections::HashMap;
use std::fmt;

/// Page size (matches `e9elf::PAGE_SIZE`).
pub const PAGE_SIZE: u64 = 4096;

/// Identifier of a physical buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhysId(pub(crate) usize);

/// Page permissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Perms {
    /// Readable.
    pub r: bool,
    /// Writable.
    pub w: bool,
    /// Executable.
    pub x: bool,
}

impl Perms {
    /// Read + execute (code pages).
    pub const RX: Perms = Perms {
        r: true,
        w: false,
        x: true,
    };
    /// Read + write (data pages).
    pub const RW: Perms = Perms {
        r: true,
        w: true,
        x: false,
    };
    /// Read-only.
    pub const R: Perms = Perms {
        r: true,
        w: false,
        x: false,
    };
}

/// A memory-access fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// No mapping at the address.
    Unmapped(u64),
    /// Permission violation (e.g. write to read-only page).
    Protection(u64),
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Unmapped(a) => write!(f, "unmapped address {a:#x}"),
            Fault::Protection(a) => write!(f, "protection fault at {a:#x}"),
        }
    }
}

impl std::error::Error for Fault {}

#[derive(Debug, Clone, Copy)]
struct PageMap {
    phys: PhysId,
    /// Byte offset of this page within the physical buffer. Reads past the
    /// end of the buffer yield zero (mmap zero-fill of a file tail).
    offset: u64,
    perms: Perms,
}

/// The virtual memory system.
#[derive(Debug, Default)]
pub struct Memory {
    bufs: Vec<Vec<u8>>,
    pages: HashMap<u64, PageMap>,
    /// Bumped on every mapping change so instruction caches can
    /// invalidate.
    pub epoch: u64,
}

impl Memory {
    /// Empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Register a physical buffer (e.g. the binary file image) and return
    /// its id.
    pub fn add_phys(&mut self, bytes: Vec<u8>) -> PhysId {
        self.bufs.push(bytes);
        PhysId(self.bufs.len() - 1)
    }

    /// Size of a physical buffer.
    pub fn phys_len(&self, id: PhysId) -> u64 {
        self.bufs[id.0].len() as u64
    }

    /// Map `len` bytes of physical buffer `phys` starting at `offset` to
    /// virtual address `vaddr`. All three values are rounded outward to
    /// page granularity. Existing mappings are replaced (MAP_FIXED
    /// semantics).
    pub fn map_file(&mut self, vaddr: u64, phys: PhysId, offset: u64, len: u64, perms: Perms) {
        assert_eq!(vaddr % PAGE_SIZE, 0, "unaligned map vaddr {vaddr:#x}");
        assert_eq!(offset % PAGE_SIZE, 0, "unaligned map offset {offset:#x}");
        let npages = len.div_ceil(PAGE_SIZE);
        for i in 0..npages {
            self.pages.insert(
                vaddr + i * PAGE_SIZE,
                PageMap {
                    phys,
                    offset: offset + i * PAGE_SIZE,
                    perms,
                },
            );
        }
        self.epoch += 1;
    }

    /// Map `len` bytes of fresh zeroed private memory at `vaddr`.
    pub fn map_anon(&mut self, vaddr: u64, len: u64, perms: Perms) {
        assert_eq!(vaddr % PAGE_SIZE, 0, "unaligned map vaddr {vaddr:#x}");
        let npages = len.div_ceil(PAGE_SIZE);
        let phys = self.add_phys(vec![0u8; (npages * PAGE_SIZE) as usize]);
        self.map_file(vaddr, phys, 0, len, perms);
    }

    /// Is the page containing `vaddr` mapped?
    pub fn is_mapped(&self, vaddr: u64) -> bool {
        self.pages.contains_key(&(vaddr & !(PAGE_SIZE - 1)))
    }

    fn page(&self, vaddr: u64) -> Result<&PageMap, Fault> {
        self.pages
            .get(&(vaddr & !(PAGE_SIZE - 1)))
            .ok_or(Fault::Unmapped(vaddr))
    }

    /// Read one byte.
    pub fn read8(&self, vaddr: u64) -> Result<u8, Fault> {
        let p = self.page(vaddr)?;
        if !p.perms.r {
            return Err(Fault::Protection(vaddr));
        }
        let off = p.offset + (vaddr & (PAGE_SIZE - 1));
        Ok(self.bufs[p.phys.0].get(off as usize).copied().unwrap_or(0))
    }

    /// Write one byte.
    pub fn write8(&mut self, vaddr: u64, v: u8) -> Result<(), Fault> {
        let p = *self.page(vaddr)?;
        if !p.perms.w {
            return Err(Fault::Protection(vaddr));
        }
        let off = (p.offset + (vaddr & (PAGE_SIZE - 1))) as usize;
        let buf = &mut self.bufs[p.phys.0];
        if off >= buf.len() {
            // Writing into the zero-fill tail of a file-backed page is not
            // meaningful for private anon buffers we size exactly, so treat
            // as a fault.
            return Err(Fault::Protection(vaddr));
        }
        buf[off] = v;
        Ok(())
    }

    /// Read `n ≤ 8` bytes little-endian.
    pub fn read_le(&self, vaddr: u64, n: u8) -> Result<u64, Fault> {
        let mut v: u64 = 0;
        for i in 0..n as u64 {
            v |= (self.read8(vaddr + i)? as u64) << (8 * i);
        }
        Ok(v)
    }

    /// Write `n ≤ 8` bytes little-endian.
    pub fn write_le(&mut self, vaddr: u64, v: u64, n: u8) -> Result<(), Fault> {
        for i in 0..n as u64 {
            self.write8(vaddr + i, (v >> (8 * i)) as u8)?;
        }
        Ok(())
    }

    /// Fetch up to 15 instruction bytes at `vaddr`, requiring execute
    /// permission on the first page. Stops early at unmapped pages (the
    /// decoder will report truncation if it needed more).
    pub fn fetch(&self, vaddr: u64) -> Result<Vec<u8>, Fault> {
        let p = self.page(vaddr)?;
        if !p.perms.x {
            return Err(Fault::Protection(vaddr));
        }
        let mut out = Vec::with_capacity(15);
        for i in 0..15u64 {
            let a = vaddr + i;
            match self.page(a) {
                Ok(p) if p.perms.x => {
                    let off = p.offset + (a & (PAGE_SIZE - 1));
                    out.push(self.bufs[p.phys.0].get(off as usize).copied().unwrap_or(0));
                }
                _ => break,
            }
        }
        Ok(out)
    }

    /// Number of mapped pages (diagnostics).
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }

    /// Resident physical memory: total bytes of *distinct* physical pages
    /// referenced by at least one mapping. Aliased mappings (physical page
    /// grouping) count their shared page once — this is the quantity the
    /// paper's §4 optimisation reduces.
    pub fn physical_footprint(&self) -> u64 {
        let mut seen = std::collections::HashSet::new();
        for pm in self.pages.values() {
            seen.insert((pm.phys, pm.offset / PAGE_SIZE));
        }
        seen.len() as u64 * PAGE_SIZE
    }

    /// Total virtual bytes mapped (for comparison with
    /// [`Memory::physical_footprint`]).
    pub fn virtual_footprint(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anon_rw_roundtrip() {
        let mut m = Memory::new();
        m.map_anon(0x10000, 0x2000, Perms::RW);
        m.write_le(0x10FF0, 0x1122334455667788, 8).unwrap();
        assert_eq!(m.read_le(0x10FF0, 8).unwrap(), 0x1122334455667788);
        // Crossing a page boundary.
        m.write_le(0x10FFC, 0xDEADBEEFCAFEBABE, 8).unwrap();
        assert_eq!(m.read_le(0x10FFC, 8).unwrap(), 0xDEADBEEFCAFEBABE);
    }

    #[test]
    fn unmapped_faults() {
        let m = Memory::new();
        assert_eq!(m.read8(0x5000), Err(Fault::Unmapped(0x5000)));
    }

    #[test]
    fn write_to_code_faults() {
        let mut m = Memory::new();
        let f = m.add_phys(vec![0x90; 4096]);
        m.map_file(0x400000, f, 0, 4096, Perms::RX);
        assert_eq!(m.write8(0x400000, 0), Err(Fault::Protection(0x400000)));
        assert_eq!(m.read8(0x400000).unwrap(), 0x90);
    }

    #[test]
    fn aliased_mapping_shares_physical_bytes() {
        // The crux of physical page grouping: one physical page visible at
        // three virtual addresses.
        let mut m = Memory::new();
        let mut page = vec![0u8; 4096];
        page[0x100] = 0xAA;
        page[0x800] = 0xBB;
        let f = m.add_phys(page);
        for base in [0x70000000u64, 0x70010000, 0x70020000] {
            m.map_file(base, f, 0, 4096, Perms::RX);
        }
        for base in [0x70000000u64, 0x70010000, 0x70020000] {
            assert_eq!(m.fetch(base + 0x100).unwrap()[0], 0xAA);
            assert_eq!(m.fetch(base + 0x800).unwrap()[0], 0xBB);
        }
    }

    #[test]
    fn file_tail_zero_fills() {
        let mut m = Memory::new();
        let f = m.add_phys(vec![0xFF; 100]); // less than a page
        m.map_file(0x10000, f, 0, 4096, Perms::R);
        assert_eq!(m.read8(0x10000 + 50).unwrap(), 0xFF);
        assert_eq!(m.read8(0x10000 + 200).unwrap(), 0);
    }

    #[test]
    fn map_fixed_replaces() {
        let mut m = Memory::new();
        m.map_anon(0x10000, 4096, Perms::RW);
        m.write8(0x10000, 7).unwrap();
        let f = m.add_phys(vec![9; 4096]);
        m.map_file(0x10000, f, 0, 4096, Perms::R);
        assert_eq!(m.read8(0x10000).unwrap(), 9);
    }

    #[test]
    fn fetch_requires_exec() {
        let mut m = Memory::new();
        m.map_anon(0x10000, 4096, Perms::RW);
        assert_eq!(m.fetch(0x10000), Err(Fault::Protection(0x10000)));
    }

    #[test]
    fn fetch_stops_at_unmapped_boundary() {
        let mut m = Memory::new();
        let f = m.add_phys(vec![0x90; 4096]);
        m.map_file(0x10000, f, 0, 4096, Perms::RX);
        let bytes = m.fetch(0x10000 + 4096 - 3).unwrap();
        assert_eq!(bytes.len(), 3);
    }

    #[test]
    fn epoch_advances_on_mapping_changes() {
        let mut m = Memory::new();
        let e0 = m.epoch;
        m.map_anon(0x10000, 4096, Perms::RW);
        assert!(m.epoch > e0);
    }

    #[test]
    fn aliased_mappings_share_physical_footprint() {
        let mut m = Memory::new();
        let f = m.add_phys(vec![0; 4096]);
        for base in [0x10000u64, 0x20000, 0x30000] {
            m.map_file(base, f, 0, 4096, Perms::RX);
        }
        assert_eq!(m.virtual_footprint(), 3 * 4096);
        assert_eq!(m.physical_footprint(), 4096); // one shared page
        m.map_anon(0x40000, 4096, Perms::RW);
        assert_eq!(m.physical_footprint(), 2 * 4096);
    }
}
