//! # e9vm — x86-64 user-mode emulator
//!
//! The execution substrate for the E9Patch reproduction. Real hardware and
//! wall-clock benchmarking are replaced by an interpreter that:
//!
//! * models **aliased memory mappings** (one physical extent mapped at many
//!   virtual addresses), which is what physical page grouping (§4 of the
//!   paper) relies on;
//! * executes the injected loader's real `mmap` syscalls against the
//!   binary's own file image (pre-opened as fd 100);
//! * counts retired instructions as the performance metric (a patched site
//!   costs ≥ 2 extra `jmpq` per execution, exactly the paper's overhead
//!   mechanism), with a configurable penalty for B0 `int3` traps;
//! * services guest `malloc`/`free` through pluggable heap backends so the
//!   low-fat heap-hardening experiment (§6.3) can swap allocators.
//!
//! ```
//! use e9vm::{load_elf, Vm};
//! # use e9x86::asm::Asm; use e9x86::reg::Reg;
//! let mut a = Asm::new(0x401000);
//! a.mov_ri32(Reg::Rax, 60);      // SYS_exit
//! a.mov_ri32(Reg::Rdi, 7);
//! a.syscall();
//! let mut b = e9elf::build::ElfBuilder::exec(0x400000);
//! b.text(a.finish().unwrap(), 0x401000);
//! b.entry(0x401000);
//!
//! let mut vm = Vm::new();
//! load_elf(&mut vm, &b.build()).unwrap();
//! let result = vm.run(1_000).unwrap();
//! assert_eq!(result.exit_code, 7);
//! ```

pub mod cpu;
pub mod exec;
pub mod heap;
pub mod load;
pub mod mem;

pub use cpu::{Cpu, Flags};
pub use exec::{RunResult, Vm, VmError, SYS_FREE, SYS_MALLOC};
pub use heap::{BumpHeap, HeapAllocator};
pub use load::{load_elf, run_binary, LoadError, SELF_FD};
pub use mem::{Fault, Memory, Perms};
