//! Differential correctness tests for the hooking subsystem: hooked
//! binaries must behave byte-for-byte like the originals (same output,
//! same exit code) while the payload side effects — per-hook call
//! counters — prove every hook actually fired. Byte-identity across the
//! sequential and sharded planners pins the determinism guarantee the
//! cache and daemon paths rely on.

use e9front::{hook_with_disasm, Hooked};
use e9hook::{HookSpec, PayloadKind};
use e9patch::RewriteConfig;
use e9synth::{generate, Profile};

fn sample(name: &str) -> e9synth::SynthBinary {
    generate(&Profile::tiny(name, false))
}

fn run(bytes: &[u8]) -> e9vm::RunResult {
    e9vm::run_binary(bytes, 200_000_000).unwrap()
}

/// Run a hooked binary and read back every hook's call counter.
fn run_with_counters(out: &Hooked) -> (e9vm::RunResult, Vec<u64>) {
    let mut vm = e9vm::Vm::new();
    e9vm::load_elf(&mut vm, &out.rewrite.binary).unwrap();
    let r = vm.run(200_000_000).unwrap();
    let counts = out
        .hooks
        .iter()
        .map(|h| vm.mem.read_le(h.counter_addr, 8).unwrap())
        .collect();
    (r, counts)
}

#[test]
fn plain_hooks_preserve_behaviour_and_count_calls() {
    let sb = sample("hookdiff");
    let orig = run(&sb.binary);
    let spec = HookSpec::counters(&["f*"]);
    let out =
        hook_with_disasm(&sb.binary, &sb.disasm, &spec, RewriteConfig::default()).unwrap();
    assert_eq!(out.rewrite.stats.failed, 0, "a hook site failed to patch");
    let (hooked, counts) = run_with_counters(&out);
    assert_eq!(hooked.output, orig.output);
    assert_eq!(hooked.exit_code, orig.exit_code);
    // Not every generated function is reachable, but the program calls
    // *some* of them — the counters must have seen those calls.
    assert!(counts.iter().sum::<u64>() > 0, "no hook ever fired");
    for h in &out.hooks {
        assert!(!h.is_call_original());
        assert_eq!(h.thunk_addr, 0);
    }
}

#[test]
fn call_original_hooks_preserve_behaviour_and_count_calls() {
    let sb = sample("hookdiff-co");
    let orig = run(&sb.binary);
    let spec = HookSpec {
        call_original: true,
        ..HookSpec::counters(&["f*"])
    };
    let out =
        hook_with_disasm(&sb.binary, &sb.disasm, &spec, RewriteConfig::default()).unwrap();
    assert_eq!(out.rewrite.stats.failed, 0);
    let (hooked, counts) = run_with_counters(&out);
    // The call-original trampoline resumes *through* the relocated
    // prologue thunk, so the displaced-instruction relocation is
    // exercised on every single call — any relocation bug breaks the
    // output equality below.
    assert_eq!(hooked.output, orig.output);
    assert_eq!(hooked.exit_code, orig.exit_code);
    assert!(counts.iter().sum::<u64>() > 0, "no hook ever fired");
    for h in &out.hooks {
        assert!(h.is_call_original());
        assert_ne!(h.thunk_addr, 0);
    }
}

#[test]
fn hooked_binary_carries_a_decodable_manifest() {
    let sb = sample("hookdiff-mf");
    let spec = HookSpec {
        call_original: true,
        ..HookSpec::counters(&["f*", "main"])
    };
    let out =
        hook_with_disasm(&sb.binary, &sb.disasm, &spec, RewriteConfig::default()).unwrap();
    let elf = e9elf::Elf::parse(&out.rewrite.binary).unwrap();
    let recs = e9hook::manifest::find_in_elf(&elf).unwrap().expect("manifest present");
    assert_eq!(recs, out.hooks);
    // Ids are dense in function-address order.
    for (k, r) in recs.iter().enumerate() {
        assert_eq!(r.id, k as u32);
    }
    assert!(recs.windows(2).all(|w| w[0].func_addr < w[1].func_addr));
    // The original binary has none.
    let orig = e9elf::Elf::parse(&sb.binary).unwrap();
    assert_eq!(e9hook::manifest::find_in_elf(&orig).unwrap(), None);
}

#[test]
fn sequential_and_sharded_planners_are_byte_identical() {
    let sb = sample("hookdiff-jobs");
    for call_original in [false, true] {
        let spec = HookSpec {
            call_original,
            ..HookSpec::counters(&["f*"])
        };
        let seq = hook_with_disasm(
            &sb.binary,
            &sb.disasm,
            &spec,
            RewriteConfig {
                jobs: Some(1),
                ..RewriteConfig::default()
            },
        )
        .unwrap();
        let par = hook_with_disasm(
            &sb.binary,
            &sb.disasm,
            &spec,
            RewriteConfig {
                jobs: Some(4),
                ..RewriteConfig::default()
            },
        )
        .unwrap();
        assert_eq!(
            seq.rewrite.binary, par.rewrite.binary,
            "--jobs 1 vs --jobs 4 diverged (call_original={call_original})"
        );
        assert_eq!(seq.hooks, par.hooks);
    }
}

#[test]
fn nop_payload_is_pure_overhead() {
    let sb = sample("hookdiff-nop");
    let orig = run(&sb.binary);
    let spec = HookSpec {
        payload: PayloadKind::Nop,
        ..HookSpec::counters(&["f*"])
    };
    let out =
        hook_with_disasm(&sb.binary, &sb.disasm, &spec, RewriteConfig::default()).unwrap();
    assert!(out.counters_addr.is_none());
    let hooked = run(&out.rewrite.binary);
    assert_eq!(hooked.output, orig.output);
    assert_eq!(hooked.exit_code, orig.exit_code);
    // The hook save/restore machinery costs instructions, so the hooked
    // run retires strictly more.
    assert!(hooked.insns > orig.insns);
}

#[test]
fn explicit_address_hooks_match_name_hooks() {
    // Hooking by --addr (the stripped-binary mode) must lower to the
    // identical batch as hooking the same entries by name.
    let sb = sample("hookdiff-addr");
    let by_name = hook_with_disasm(
        &sb.binary,
        &sb.disasm,
        &HookSpec::counters(&["f*"]),
        RewriteConfig::default(),
    )
    .unwrap();
    let addrs: Vec<u64> = by_name.hooks.iter().map(|h| h.func_addr).collect();
    let by_addr = hook_with_disasm(
        &sb.binary,
        &sb.disasm,
        &HookSpec {
            funcs: Vec::new(),
            addrs,
            call_original: false,
            payload: PayloadKind::Counter,
        },
        RewriteConfig::default(),
    )
    .unwrap();
    // Names differ (synthesized 0x... for address hooks) so the manifest
    // segment differs; everything address-shaped must agree.
    for (a, b) in by_name.hooks.iter().zip(&by_addr.hooks) {
        assert_eq!(a.func_addr, b.func_addr);
        assert_eq!(a.payload_addr, b.payload_addr);
        assert_eq!(a.counter_addr, b.counter_addr);
    }
    let (r1, c1) = run_with_counters(&by_name);
    let (r2, c2) = run_with_counters(&by_addr);
    assert_eq!(r1.output, r2.output);
    assert_eq!(c1, c2);
}
