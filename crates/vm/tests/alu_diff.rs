//! Differential tests of the interpreter's ALU and flag semantics: for
//! random operands, a tiny guest program computes `a OP b`, saves the
//! result and RFLAGS to memory, and the outcome is compared against a
//! Rust-side model of the x86 semantics.

use e9vm::{load_elf, Vm};
use e9x86::asm::{Asm, Mem};
use e9x86::reg::{Reg, Width};
use e9qcheck::prelude::*;

const RESULT_ADDR: u64 = 0x403000;

#[derive(Debug, Clone, Copy)]
enum Op {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Cmp,
    Test,
    Imul,
    Shl,
    Shr,
}

fn emit_op(a: &mut Asm, op: Op, w: Width) {
    // dst = rax, src = rcx (shift count in cl for the shift ops is modelled
    // with an immediate instead — both paths share the group-2 decoder).
    match op {
        Op::Add => a.add_rr(w, Reg::Rax, Reg::Rcx),
        Op::Sub => a.sub_rr(w, Reg::Rax, Reg::Rcx),
        Op::And => a.and_rr(w, Reg::Rax, Reg::Rcx),
        Op::Or => a.or_rr(w, Reg::Rax, Reg::Rcx),
        Op::Xor => a.xor_rr(w, Reg::Rax, Reg::Rcx),
        Op::Cmp => a.cmp_rr(w, Reg::Rax, Reg::Rcx),
        Op::Test => a.test_rr(w, Reg::Rax, Reg::Rcx),
        Op::Imul => a.imul_rr(w, Reg::Rax, Reg::Rcx),
        Op::Shl => a.shl_ri(w, Reg::Rax, 3),
        Op::Shr => a.shr_ri(w, Reg::Rax, 3),
    }
}

/// Rust model of the operation: returns (result, cf, zf, sf, of) or None
/// for flags the model leaves unchecked.
fn model(op: Op, av: u64, bv: u64, w: Width) -> (u64, Option<bool>, bool, bool, Option<bool>) {
    let mask = w.mask();
    let bits = w.bits();
    let (am, bm) = (av & mask, bv & mask);
    let sign = 1u64 << (bits - 1);
    match op {
        Op::Add => {
            let r = am.wrapping_add(bm) & mask;
            let cf = ((am as u128) + (bm as u128)) >> bits != 0;
            let of = !(am ^ bm) & (am ^ r) & sign != 0;
            (r, Some(cf), r == 0, r & sign != 0, Some(of))
        }
        Op::Sub | Op::Cmp => {
            let r = am.wrapping_sub(bm) & mask;
            let cf = am < bm;
            let of = (am ^ bm) & (am ^ r) & sign != 0;
            let res = if matches!(op, Op::Cmp) { am } else { r };
            (res, Some(cf), r == 0, r & sign != 0, Some(of))
        }
        Op::And | Op::Test => {
            let r = am & bm;
            let res = if matches!(op, Op::Test) { am } else { r };
            (res, Some(false), r == 0, r & sign != 0, Some(false))
        }
        Op::Or => {
            let r = am | bm;
            (r, Some(false), r == 0, r & sign != 0, Some(false))
        }
        Op::Xor => {
            let r = am ^ bm;
            (r, Some(false), r == 0, r & sign != 0, Some(false))
        }
        Op::Imul => {
            // Two-operand imul truncates; the emulator models zf/sf from
            // the result (architecturally undefined) and clears cf/of on
            // no-overflow paths — only check the result.
            let r = (w.sext(am)).wrapping_mul(w.sext(bm)) as u64 & mask;
            (r, None, r == 0, r & sign != 0, None)
        }
        Op::Shl => {
            let r = (am << 3) & mask;
            (r, None, r == 0, r & sign != 0, None)
        }
        Op::Shr => {
            let r = am >> 3;
            (r, None, r == 0, r & sign != 0, None)
        }
    }
}

fn run_guest(op: Op, av: u64, bv: u64, w: Width) -> (u64, u64) {
    let mut a = Asm::new(0x401000);
    a.mov_ri64(Reg::Rax, av as i64);
    a.mov_ri64(Reg::Rcx, bv as i64);
    emit_op(&mut a, op, w);
    a.pushfq();
    a.pop_r(Reg::Rdx);
    a.mov_ri64(Reg::Rbx, RESULT_ADDR as i64);
    a.mov_mr(Width::Q, Mem::base(Reg::Rbx), Reg::Rax);
    a.mov_mr(Width::Q, Mem::base_disp(Reg::Rbx, 8), Reg::Rdx);
    a.mov_ri32(Reg::Rax, 60);
    a.mov_ri32(Reg::Rdi, 0);
    a.syscall();
    let code = a.finish().unwrap();
    let mut b = e9elf::build::ElfBuilder::exec(0x400000);
    b.text(code, 0x401000);
    b.data(vec![0u8; 16], RESULT_ADDR);
    b.entry(0x401000);
    let mut vm = Vm::new();
    load_elf(&mut vm, &b.build()).unwrap();
    vm.run(1_000_000).unwrap();
    let result = vm.mem.read_le(RESULT_ADDR, 8).unwrap();
    let rflags = vm.mem.read_le(RESULT_ADDR + 8, 8).unwrap();
    (result, rflags)
}

fn check(op: Op, av: u64, bv: u64, w: Width) -> Result<(), TestCaseError> {
    let (result, rflags) = run_guest(op, av, bv, w);
    let (want, cf, zf, sf, of) = model(op, av, bv, w);
    // The destination register holds the result in its low bits (cmp/test
    // leave it untouched = original a).
    prop_assert_eq!(
        result & w.mask(),
        want & w.mask(),
        "result mismatch for {:?} {:#x},{:#x} ({:?})",
        op,
        av,
        bv,
        w
    );
    let g_cf = rflags & 1 != 0;
    let g_zf = rflags & (1 << 6) != 0;
    let g_sf = rflags & (1 << 7) != 0;
    let g_of = rflags & (1 << 11) != 0;
    if let Some(cf) = cf {
        prop_assert_eq!(g_cf, cf, "CF for {:?} {:#x},{:#x} ({:?})", op, av, bv, w);
    }
    prop_assert_eq!(g_zf, zf, "ZF for {:?} {:#x},{:#x} ({:?})", op, av, bv, w);
    prop_assert_eq!(g_sf, sf, "SF for {:?} {:#x},{:#x} ({:?})", op, av, bv, w);
    if let Some(of) = of {
        prop_assert_eq!(g_of, of, "OF for {:?} {:#x},{:#x} ({:?})", op, av, bv, w);
    }
    Ok(())
}

props! {
    #[test]
    fn alu_matches_model(
        op_idx in 0usize..10,
        av in any::<u64>(),
        bv in any::<u64>(),
        w_idx in 0usize..2,
    ) {
        let op = [Op::Add, Op::Sub, Op::And, Op::Or, Op::Xor, Op::Cmp, Op::Test, Op::Imul,
                  Op::Shl, Op::Shr][op_idx];
        let w = [Width::Q, Width::D][w_idx];
        check(op, av, bv, w)?;
    }

    /// Edge operands that historically break flag implementations.
    #[test]
    fn alu_edge_operands(op_idx in 0usize..8) {
        let op = [Op::Add, Op::Sub, Op::And, Op::Or, Op::Xor, Op::Cmp, Op::Test, Op::Imul][op_idx];
        for &(av, bv) in &[
            (0u64, 0u64),
            (u64::MAX, 1),
            (1, u64::MAX),
            (i64::MIN as u64, i64::MIN as u64),
            (i64::MAX as u64, 1),
            (0x8000_0000, 0x8000_0000),
            (0xFFFF_FFFF, 1),
        ] {
            for w in [Width::Q, Width::D] {
                check(op, av, bv, w)?;
            }
        }
    }
}

#[test]
fn inc_dec_preserve_carry() {
    // inc/dec must not touch CF (the planner's trampolines rely on precise
    // flag modelling).
    let mut a = Asm::new(0x401000);
    a.mov_ri64(Reg::Rax, -1);
    a.add_ri(Width::Q, Reg::Rax, 1); // sets CF
    a.mov_ri64(Reg::Rbx, RESULT_ADDR as i64);
    a.inc_m(Width::Q, Mem::base(Reg::Rbx)); // must preserve CF
    a.pushfq();
    a.pop_r(Reg::Rdx);
    a.mov_mr(Width::Q, Mem::base_disp(Reg::Rbx, 8), Reg::Rdx);
    a.mov_ri32(Reg::Rax, 60);
    a.mov_ri32(Reg::Rdi, 0);
    a.syscall();
    let code = a.finish().unwrap();
    let mut b = e9elf::build::ElfBuilder::exec(0x400000);
    b.text(code, 0x401000);
    b.data(vec![0u8; 16], RESULT_ADDR);
    b.entry(0x401000);
    let mut vm = Vm::new();
    load_elf(&mut vm, &b.build()).unwrap();
    vm.run(1_000_000).unwrap();
    let rflags = vm.mem.read_le(RESULT_ADDR + 8, 8).unwrap();
    assert!(rflags & 1 != 0, "CF lost across inc");
}

#[test]
fn setcc_and_cmov_follow_flags() {
    // cmp 3,5; setl → 1; cmovl picks the source.
    let mut a = Asm::new(0x401000);
    a.mov_ri32(Reg::Rax, 3);
    a.mov_ri32(Reg::Rcx, 5);
    a.cmp_rr(Width::Q, Reg::Rax, Reg::Rcx); // 3 - 5 → L
    // setl %dl: 0f 9c c2 (REX not needed for dl).
    a.raw(&[0x0F, 0x9C, 0xC2]);
    // cmovl %rcx,%rbx: 48 0f 4c d9.
    a.mov_ri32(Reg::Rbx, 0);
    a.raw(&[0x48, 0x0F, 0x4C, 0xD9]);
    a.mov_ri64(Reg::Rsi, RESULT_ADDR as i64);
    a.mov_mr(Width::B, Mem::base(Reg::Rsi), Reg::Rdx);
    a.mov_mr(Width::Q, Mem::base_disp(Reg::Rsi, 8), Reg::Rbx);
    a.mov_ri32(Reg::Rax, 60);
    a.mov_ri32(Reg::Rdi, 0);
    a.syscall();
    let code = a.finish().unwrap();
    let mut b = e9elf::build::ElfBuilder::exec(0x400000);
    b.text(code, 0x401000);
    b.data(vec![0u8; 16], RESULT_ADDR);
    b.entry(0x401000);
    let mut vm = Vm::new();
    load_elf(&mut vm, &b.build()).unwrap();
    vm.run(1_000_000).unwrap();
    assert_eq!(vm.mem.read_le(RESULT_ADDR, 1).unwrap(), 1, "setl");
    assert_eq!(vm.mem.read_le(RESULT_ADDR + 8, 8).unwrap(), 5, "cmovl");
}

#[test]
fn shift_by_zero_preserves_flags() {
    // x86 rule: a shift with count 0 leaves all flags unchanged.
    let mut a = Asm::new(0x401000);
    a.mov_ri64(Reg::Rax, -1);
    a.add_ri(Width::Q, Reg::Rax, 1); // CF=1 ZF=1
    a.mov_ri32(Reg::Rcx, 0);
    a.raw(&[0x48, 0xD3, 0xE0]); // shl %cl,%rax (count 0)
    a.pushfq();
    a.pop_r(Reg::Rdx);
    a.mov_ri64(Reg::Rbx, RESULT_ADDR as i64);
    a.mov_mr(Width::Q, Mem::base(Reg::Rbx), Reg::Rdx);
    a.mov_ri32(Reg::Rax, 60);
    a.mov_ri32(Reg::Rdi, 0);
    a.syscall();
    let code = a.finish().unwrap();
    let mut b = e9elf::build::ElfBuilder::exec(0x400000);
    b.text(code, 0x401000);
    b.data(vec![0u8; 16], RESULT_ADDR);
    b.entry(0x401000);
    let mut vm = Vm::new();
    load_elf(&mut vm, &b.build()).unwrap();
    vm.run(1_000_000).unwrap();
    let rflags = vm.mem.read_le(RESULT_ADDR, 8).unwrap();
    assert!(rflags & 1 != 0, "CF must survive a zero-count shift");
    assert!(rflags & (1 << 6) != 0, "ZF must survive a zero-count shift");
}
