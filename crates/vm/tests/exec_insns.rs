//! Per-instruction semantics tests for the interpreter: each test runs a
//! small guest program and checks architectural effects through the exit
//! code or memory.

use e9vm::{load_elf, Vm};
use e9x86::asm::{Asm, Mem};
use e9x86::reg::{Reg, Width};

const DATA: u64 = 0x403000;

/// Assemble `body` into a runnable binary; the body must end by setting
/// `%rdi` and invoking `exit`.
fn run_program(body: impl FnOnce(&mut Asm)) -> (i32, Vm) {
    let mut a = Asm::new(0x401000);
    body(&mut a);
    a.mov_ri32(Reg::Rax, 60);
    a.syscall();
    let code = a.finish().unwrap();
    let mut b = e9elf::build::ElfBuilder::exec(0x400000);
    b.text(code, 0x401000);
    b.data(vec![0u8; 256], DATA);
    b.entry(0x401000);
    let bin = b.build();
    let mut vm = Vm::new();
    load_elf(&mut vm, &bin).unwrap();
    let r = vm.run(1_000_000).unwrap();
    (r.exit_code, vm)
}

fn exit_code(body: impl FnOnce(&mut Asm)) -> i32 {
    run_program(body).0
}

#[test]
fn mov_widths_zero_extend_and_merge() {
    // 32-bit mov zero-extends; 8-bit merges.
    let code = exit_code(|a| {
        a.mov_ri64(Reg::Rdi, -1);
        a.mov_ri32(Reg::Rdi, 0x55); // zero-extends the whole register
        a.raw(&[0x40, 0xB7, 0x02]); // mov $2,%dil (REX + B0+7)
        // rdi = 0x02 → exit 2.
    });
    assert_eq!(code, 2);
}

#[test]
fn xchg_swaps() {
    let code = exit_code(|a| {
        a.mov_ri32(Reg::Rax, 7);
        a.mov_ri32(Reg::Rdi, 9);
        // xchg %rax,%rdi: 48 97 (opcode-embedded) — use modrm form 48 87 C7.
        a.raw(&[0x48, 0x87, 0xC7]);
        a.and_ri(Width::Q, Reg::Rdi, 0x7F); // rdi now 7
    });
    assert_eq!(code, 7);
}

#[test]
fn xchg_rax_short_form() {
    let code = exit_code(|a| {
        a.mov_ri32(Reg::Rax, 40);
        a.mov_ri32(Reg::Rcx, 2);
        a.raw(&[0x48, 0x91]); // xchg %rax,%rcx
        a.mov_rr(Width::Q, Reg::Rdi, Reg::Rax); // 2
        a.add_rr(Width::Q, Reg::Rdi, Reg::Rcx); // + 40
    });
    assert_eq!(code, 42);
}

#[test]
fn movsxd_sign_extends() {
    let code = exit_code(|a| {
        a.mov_ri32(Reg::Rcx, 0xFFFF_FFFF); // ecx = -1 (as i32)
        a.raw(&[0x48, 0x63, 0xF9]); // movsxd %ecx,%rdi
        // rdi = -1; exit takes low byte semantics: -1 & 0x7f.
        a.and_ri(Width::Q, Reg::Rdi, 0x7F);
    });
    assert_eq!(code, 0x7F);
}

#[test]
fn movzx_movsx_byte() {
    let (_, vm) = run_program(|a| {
        a.mov_ri64(Reg::Rbx, DATA as i64);
        a.mov_mi(Width::B, Mem::base(Reg::Rbx), 0x80u8 as i8 as i32);
        a.movzx_b(Reg::Rcx, Mem::base(Reg::Rbx)); // 0x80
        a.raw(&[0x48, 0x0F, 0xBE, 0x13]); // movsx (%rbx),%rdx → 0xFFFF..FF80
        a.mov_mr(Width::Q, Mem::base_disp(Reg::Rbx, 8), Reg::Rcx);
        a.mov_mr(Width::Q, Mem::base_disp(Reg::Rbx, 16), Reg::Rdx);
        a.mov_ri32(Reg::Rdi, 0);
    });
    assert_eq!(vm.mem.read_le(DATA + 8, 8).unwrap(), 0x80);
    assert_eq!(vm.mem.read_le(DATA + 16, 8).unwrap(), 0xFFFF_FFFF_FFFF_FF80);
}

#[test]
fn push_imm_and_pop() {
    let code = exit_code(|a| {
        a.raw(&[0x6A, 0x2A]); // push $42
        a.pop_r(Reg::Rdi);
    });
    assert_eq!(code, 42);
}

#[test]
fn push_imm32_sign_extends() {
    let (_, vm) = run_program(|a| {
        a.raw(&[0x68, 0xFF, 0xFF, 0xFF, 0xFF]); // push $-1
        a.pop_r(Reg::Rcx);
        a.mov_ri64(Reg::Rbx, DATA as i64);
        a.mov_mr(Width::Q, Mem::base(Reg::Rbx), Reg::Rcx);
        a.mov_ri32(Reg::Rdi, 0);
    });
    assert_eq!(vm.mem.read_le(DATA, 8).unwrap(), u64::MAX);
}

#[test]
fn leave_unwinds_frame() {
    let code = exit_code(|a| {
        // Build a frame: push rbp; mov rsp→rbp; sub 32,rsp; leave.
        a.push_r(Reg::Rbp);
        a.mov_rr(Width::Q, Reg::Rbp, Reg::Rsp);
        a.sub_ri(Width::Q, Reg::Rsp, 32);
        a.raw(&[0xC9]); // leave
        a.mov_ri32(Reg::Rdi, 5);
        a.pop_r(Reg::Rbp); // undo our initial push... wait, leave popped it
        // rsp is back; just exit.
        a.mov_ri32(Reg::Rdi, 5);
    });
    assert_eq!(code, 5);
}

#[test]
fn cqo_sign_extends_into_rdx() {
    let (_, vm) = run_program(|a| {
        a.mov_ri64(Reg::Rax, -7);
        a.raw(&[0x48, 0x99]); // cqo
        a.mov_ri64(Reg::Rbx, DATA as i64);
        a.mov_mr(Width::Q, Mem::base(Reg::Rbx), Reg::Rdx);
        a.mov_ri32(Reg::Rdi, 0);
    });
    assert_eq!(vm.mem.read_le(DATA, 8).unwrap(), u64::MAX);
}

#[test]
fn unsigned_div() {
    let code = exit_code(|a| {
        a.mov_ri32(Reg::Rax, 100);
        a.mov_ri32(Reg::Rdx, 0);
        a.mov_ri32(Reg::Rsi, 7);
        a.raw(&[0x48, 0xF7, 0xF6]); // divq %rsi → rax=14, rdx=2
        a.mov_rr(Width::Q, Reg::Rdi, Reg::Rax);
        a.add_rr(Width::Q, Reg::Rdi, Reg::Rdx); // 16
    });
    assert_eq!(code, 16);
}

#[test]
fn mul_widens_into_rdx() {
    let (_, vm) = run_program(|a| {
        a.mov_ri64(Reg::Rax, u64::MAX as i64);
        a.mov_ri32(Reg::Rcx, 2);
        a.raw(&[0x48, 0xF7, 0xE1]); // mulq %rcx → rdx:rax = 2*(2^64-1)
        a.mov_ri64(Reg::Rbx, DATA as i64);
        a.mov_mr(Width::Q, Mem::base(Reg::Rbx), Reg::Rax);
        a.mov_mr(Width::Q, Mem::base_disp(Reg::Rbx, 8), Reg::Rdx);
        a.mov_ri32(Reg::Rdi, 0);
    });
    assert_eq!(vm.mem.read_le(DATA, 8).unwrap(), u64::MAX - 1);
    assert_eq!(vm.mem.read_le(DATA + 8, 8).unwrap(), 1);
}

#[test]
fn not_and_neg() {
    let code = exit_code(|a| {
        a.mov_ri32(Reg::Rdi, 0);
        a.raw(&[0x48, 0xF7, 0xD7]); // not %rdi → -1
        a.raw(&[0x48, 0xF7, 0xDF]); // neg %rdi → 1
    });
    assert_eq!(code, 1);
}

#[test]
fn shifts_and_rotates() {
    let (_, vm) = run_program(|a| {
        a.mov_ri32(Reg::Rax, 1);
        a.shl_ri(Width::Q, Reg::Rax, 8); // 256
        a.shr_ri(Width::Q, Reg::Rax, 4); // 16
        // sar on a negative value: mov -32, rcx; sar 2 → -8.
        a.mov_ri64(Reg::Rcx, -32);
        a.raw(&[0x48, 0xC1, 0xF9, 0x02]); // sar $2,%rcx
        // rol 8-bit-ish on 64: rol $4, rdx of 0xF000..0001.
        a.mov_ri64(Reg::Rdx, 0xF000_0000_0000_0001u64 as i64);
        a.raw(&[0x48, 0xC1, 0xC2, 0x04]); // rol $4,%rdx → 0x...001F
        a.mov_ri64(Reg::Rbx, DATA as i64);
        a.mov_mr(Width::Q, Mem::base(Reg::Rbx), Reg::Rax);
        a.mov_mr(Width::Q, Mem::base_disp(Reg::Rbx, 8), Reg::Rcx);
        a.mov_mr(Width::Q, Mem::base_disp(Reg::Rbx, 16), Reg::Rdx);
        a.mov_ri32(Reg::Rdi, 0);
    });
    assert_eq!(vm.mem.read_le(DATA, 8).unwrap(), 16);
    assert_eq!(vm.mem.read_le(DATA + 8, 8).unwrap(), (-8i64) as u64);
    assert_eq!(vm.mem.read_le(DATA + 16, 8).unwrap(), 0x0000_0000_0000_001F);
}

#[test]
fn shift_by_cl() {
    let code = exit_code(|a| {
        a.mov_ri32(Reg::Rdi, 1);
        a.mov_ri32(Reg::Rcx, 5);
        a.raw(&[0x48, 0xD3, 0xE7]); // shl %cl,%rdi → 32
    });
    assert_eq!(code, 32);
}

#[test]
fn imul_with_immediate_forms() {
    let code = exit_code(|a| {
        a.mov_ri32(Reg::Rax, 6);
        a.raw(&[0x48, 0x6B, 0xF8, 0x07]); // imul $7,%rax,%rdi → 42
    });
    assert_eq!(code, 42);
}

#[test]
fn call_indirect_through_memory() {
    let code = exit_code(|a| {
        let f = a.fresh_label();
        let tbl = a.fresh_label();
        let done = a.fresh_label();
        a.mov_rlabel(Reg::Rbx, tbl);
        a.raw(&[0xFF, 0x13]); // call *(%rbx)
        a.jmp(done);
        a.bind(f);
        a.mov_ri32(Reg::Rdi, 33);
        a.ret();
        a.bind(tbl);
        a.dq_label(f);
        a.bind(done);
    });
    assert_eq!(code, 33);
}

#[test]
fn rip_relative_simple() {
    let (_, vm) = run_program(|a| {
        let cell = a.fresh_label();
        let start = a.fresh_label();
        a.jmp(start);
        a.bind(cell);
        a.dq(0x1234);
        a.bind(start);
        a.mov_rm(Width::Q, Reg::Rcx, Mem::rip(cell));
        a.mov_ri64(Reg::Rdx, DATA as i64);
        a.mov_mr(Width::Q, Mem::base(Reg::Rdx), Reg::Rcx);
        a.mov_ri32(Reg::Rdi, 0);
    });
    assert_eq!(vm.mem.read_le(DATA, 8).unwrap(), 0x1234);
}

#[test]
fn ret_imm_pops_arguments() {
    let code = exit_code(|a| {
        let f = a.fresh_label();
        let done = a.fresh_label();
        a.raw(&[0x6A, 0x01]); // push $1 (arg)
        a.raw(&[0x6A, 0x02]); // push $2 (arg)
        a.call(f);
        a.jmp(done);
        a.bind(f);
        a.mov_ri32(Reg::Rdi, 4);
        a.raw(&[0xC2, 0x10, 0x00]); // ret $16 — pops both args
        a.bind(done);
    });
    assert_eq!(code, 4);
}

#[test]
fn nop_variants_are_inert() {
    let code = exit_code(|a| {
        a.mov_ri32(Reg::Rdi, 11);
        for n in 1..=9 {
            a.nops(n);
        }
        a.raw(&[0x0F, 0x18, 0x09]); // prefetch hint (nop class)
    });
    assert_eq!(code, 11);
}

#[test]
fn unsupported_instruction_reports_cleanly() {
    let mut a = Asm::new(0x401000);
    a.ud2();
    let code = a.finish().unwrap();
    let mut b = e9elf::build::ElfBuilder::exec(0x400000);
    b.text(code, 0x401000);
    b.entry(0x401000);
    let mut vm = Vm::new();
    load_elf(&mut vm, &b.build()).unwrap();
    let err = vm.run(10).unwrap_err();
    assert!(matches!(err, e9vm::VmError::Unsupported { .. }));
}

#[test]
fn divide_by_zero_is_an_error() {
    let mut a = Asm::new(0x401000);
    a.mov_ri32(Reg::Rax, 1);
    a.mov_ri32(Reg::Rdx, 0);
    a.mov_ri32(Reg::Rsi, 0);
    a.raw(&[0x48, 0xF7, 0xF6]); // divq %rsi
    let code = a.finish().unwrap();
    let mut b = e9elf::build::ElfBuilder::exec(0x400000);
    b.text(code, 0x401000);
    b.entry(0x401000);
    let mut vm = Vm::new();
    load_elf(&mut vm, &b.build()).unwrap();
    assert!(vm.run(100).is_err());
}

#[test]
fn recent_rips_recorded() {
    let mut a = Asm::new(0x401000);
    a.mov_ri32(Reg::Rax, 60);
    a.mov_ri32(Reg::Rdi, 0);
    a.syscall();
    let code = a.finish().unwrap();
    let mut b = e9elf::build::ElfBuilder::exec(0x400000);
    b.text(code, 0x401000);
    b.entry(0x401000);
    let mut vm = Vm::new();
    load_elf(&mut vm, &b.build()).unwrap();
    vm.run(100).unwrap();
    let rips = vm.recent_rips();
    assert_eq!(rips, vec![0x401000, 0x401005, 0x40100A]);
}
