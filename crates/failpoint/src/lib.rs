//! # e9failpt — deterministic I/O failpoints and retry primitives
//!
//! PRs 3 and 7 hardened the two *untrusted input* surfaces (hostile
//! ELFs, hostile wire clients). This crate hardens the third surface a
//! deployed rewriter meets: its own **environment**. Disks fill up
//! (ENOSPC), devices error (EIO), signals interrupt syscalls (EINTR),
//! writes land short, renames fail — and a fleet-scale daemon must keep
//! serving rewrites through all of it.
//!
//! Every I/O boundary in the workspace — the cache's on-disk CAS, the
//! frontend's atomic output writer, the wire client, the legacy threaded
//! server — carries a **named failpoint**: a compiled-in hook that can
//! inject one of five fault classes on demand. The crate sits at the
//! very bottom of the crate graph (zero dependencies, below `e9cache`)
//! so every layer can reach it.
//!
//! ## Inert by default
//!
//! Failpoints ship in release builds. When no schedule is active, a
//! check is one relaxed atomic load and a predicted-not-taken branch —
//! nothing is parsed, locked, allocated or counted. Activation happens
//! either programmatically ([`activate`] / [`activate_scoped`]) or from
//! the environment ([`init_from_env`], called by the `e9patchd` and
//! `e9tool` binaries at startup):
//!
//! ```console
//! $ E9FAILPOINTS='cache.disk.stage=enospc@first:4' e9patchd --socket …
//! ```
//!
//! ## The schedule grammar
//!
//! A spec is a comma-separated list of `point=fault[@when]` terms:
//!
//! * `point` — a failpoint name (`cache.disk.read`) or a prefix
//!   wildcard (`cache.disk.*`, or bare `*`). The first matching term
//!   decides; later terms are not consulted.
//! * `fault` — `enospc`, `eio`, `eintr`, `partial`, `rename`.
//! * `when` — `always` (the default), `once`, `first:N` (the first N
//!   hits fire, then the fault *clears* — the recovery story), `after:N`
//!   (hits beyond the first N fire), `1inN` (a seeded coin with
//!   probability 1/N per hit).
//!
//! Schedules are **deterministic**: the `1inN` coin is a pure function
//! of `(seed, point pattern, hit index)`, so a fault campaign replays
//! exactly from its seed. The seed comes from [`ENV_SEED`] (default 42)
//! or the `activate` argument.
//!
//! ## Retry primitives
//!
//! The [`retry`] module owns the workspace's *response* to transient
//! faults: the bounded-doubling [`retry::Backoff`] schedule (previously
//! duplicated across the wire client's connect paths) and
//! [`retry::retry_interrupted`] for bounded EINTR loops. Injection and
//! reaction live together so a test can steer both sides.

pub mod retry;

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// Environment variable holding the failpoint spec (see the crate docs
/// for the grammar). Read by [`init_from_env`].
pub const ENV_SPEC: &str = "E9FAILPOINTS";

/// Environment variable holding the seed for `1inN` coins (default 42).
pub const ENV_SEED: &str = "E9FAILPOINTS_SEED";

/// The five injectable fault classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// `ENOSPC` — no space left on device (the disk-full class).
    Enospc,
    /// `EIO` — low-level device error.
    Eio,
    /// `EINTR` — syscall interrupted by a signal; always retryable.
    Eintr,
    /// A short write: the site should accept fewer bytes than asked.
    /// Sites that cannot express partial progress surface it as a
    /// `WriteZero` error instead.
    Partial,
    /// A failed rename (`EXDEV`) — the atomic-publish failure class.
    RenameFail,
}

impl Fault {
    /// Spec-grammar name (`enospc` / `eio` / `eintr` / `partial` /
    /// `rename`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Fault::Enospc => "enospc",
            Fault::Eio => "eio",
            Fault::Eintr => "eintr",
            Fault::Partial => "partial",
            Fault::RenameFail => "rename",
        }
    }

    /// Parse a spec-grammar fault name.
    #[must_use]
    pub fn from_name(s: &str) -> Option<Fault> {
        match s {
            "enospc" => Some(Fault::Enospc),
            "eio" => Some(Fault::Eio),
            "eintr" => Some(Fault::Eintr),
            "partial" => Some(Fault::Partial),
            "rename" => Some(Fault::RenameFail),
            _ => None,
        }
    }

    /// The fault as the `io::Error` a real kernel would have returned.
    /// EINTR is built from [`io::ErrorKind::Interrupted`] so retry loops
    /// classify it identically on every platform.
    #[must_use]
    pub fn to_io_error(self) -> io::Error {
        match self {
            Fault::Enospc => io::Error::from_raw_os_error(28), // ENOSPC
            Fault::Eio => io::Error::from_raw_os_error(5),     // EIO
            Fault::Eintr => io::Error::new(io::ErrorKind::Interrupted, "injected EINTR"),
            Fault::Partial => io::Error::new(io::ErrorKind::WriteZero, "injected partial write"),
            Fault::RenameFail => io::Error::from_raw_os_error(18), // EXDEV
        }
    }
}

/// When a matching term fires, relative to its per-term hit counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum When {
    Always,
    Once,
    /// Hits `1..=n` fire, later hits do not — the fault *clears*.
    FirstN(u64),
    /// Hits `n+1..` fire.
    AfterN(u64),
    /// Seeded coin: fires with probability `1/n` per hit.
    OneIn(u64),
}

#[derive(Debug)]
struct Term {
    pattern: String,
    fault: Fault,
    when: When,
    hits: AtomicU64,
    fired: AtomicU64,
}

impl Term {
    fn matches(&self, point: &str) -> bool {
        match self.pattern.strip_suffix('*') {
            Some(prefix) => point.starts_with(prefix),
            None => self.pattern == point,
        }
    }
}

#[derive(Debug)]
struct Registry {
    spec: String,
    seed: u64,
    terms: Vec<Term>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static INJECTED: AtomicU64 = AtomicU64::new(0);
static REGISTRY: RwLock<Option<Arc<Registry>>> = RwLock::new(None);
/// Serializes scoped activations so parallel tests cannot see each
/// other's schedules.
static SCOPE_GATE: Mutex<()> = Mutex::new(());

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// The `1inN` coin: pure in `(seed, pattern, hit index)`.
fn coin(seed: u64, pattern: &str, hit: u64, n: u64) -> bool {
    if n <= 1 {
        return true;
    }
    splitmix64(seed ^ fnv1a(pattern) ^ hit.wrapping_mul(0x2545_F491_4F6C_DD1D)) % n == 0
}

fn parse_when(s: &str) -> Result<When, String> {
    if s == "always" {
        return Ok(When::Always);
    }
    if s == "once" {
        return Ok(When::Once);
    }
    if let Some(n) = s.strip_prefix("first:") {
        let n: u64 = n.parse().map_err(|_| format!("bad count in `{s}`"))?;
        return Ok(When::FirstN(n));
    }
    if let Some(n) = s.strip_prefix("after:") {
        let n: u64 = n.parse().map_err(|_| format!("bad count in `{s}`"))?;
        return Ok(When::AfterN(n));
    }
    if let Some(n) = s.strip_prefix("1in") {
        let n: u64 = n.parse().map_err(|_| format!("bad count in `{s}`"))?;
        if n == 0 {
            return Err(format!("`{s}`: N must be >= 1"));
        }
        return Ok(When::OneIn(n));
    }
    Err(format!("unknown schedule `{s}` (want always/once/first:N/after:N/1inN)"))
}

fn parse_spec(spec: &str, seed: u64) -> Result<Registry, String> {
    let mut terms = Vec::new();
    for raw in spec.split(',') {
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let (point, rest) = raw
            .split_once('=')
            .ok_or_else(|| format!("term `{raw}`: want point=fault[@when]"))?;
        let (fault, when) = match rest.split_once('@') {
            Some((f, w)) => (f, parse_when(w)?),
            None => (rest, When::Always),
        };
        let fault = Fault::from_name(fault.trim())
            .ok_or_else(|| format!("term `{raw}`: unknown fault `{fault}`"))?;
        let point = point.trim();
        if point.is_empty() {
            return Err(format!("term `{raw}`: empty point name"));
        }
        terms.push(Term {
            pattern: point.to_string(),
            fault,
            when,
            hits: AtomicU64::new(0),
            fired: AtomicU64::new(0),
        });
    }
    if terms.is_empty() {
        return Err("empty failpoint spec".to_string());
    }
    Ok(Registry {
        spec: spec.to_string(),
        seed,
        terms,
    })
}

fn registry() -> Option<Arc<Registry>> {
    REGISTRY
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

/// Activate `spec` globally (replacing any active schedule).
///
/// # Errors
///
/// A human-readable message naming the malformed term.
pub fn activate(spec: &str, seed: u64) -> Result<(), String> {
    let reg = parse_spec(spec, seed)?;
    *REGISTRY
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(Arc::new(reg));
    ENABLED.store(true, Ordering::SeqCst);
    Ok(())
}

/// Deactivate all failpoints; checks return to the inert fast path.
pub fn deactivate() {
    ENABLED.store(false, Ordering::SeqCst);
    *REGISTRY
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
}

/// RAII activation for tests and campaigns: holds a global gate (so
/// concurrently running tests cannot interleave schedules) and
/// deactivates on drop.
#[derive(Debug)]
pub struct ScopedFailpoints {
    _gate: MutexGuard<'static, ()>,
}

impl Drop for ScopedFailpoints {
    fn drop(&mut self) {
        deactivate();
    }
}

/// Activate `spec` for the lifetime of the returned guard. Blocks until
/// any other scoped activation has dropped.
///
/// # Errors
///
/// Spec parse errors, with the gate released.
pub fn activate_scoped(spec: &str, seed: u64) -> Result<ScopedFailpoints, String> {
    let gate = SCOPE_GATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    activate(spec, seed)?;
    Ok(ScopedFailpoints { _gate: gate })
}

/// Read [`ENV_SPEC`] / [`ENV_SEED`] and activate if a spec is present.
/// Returns `Ok(true)` when a schedule was activated.
///
/// # Errors
///
/// Spec parse errors (the caller decides whether to die or warn).
pub fn init_from_env() -> Result<bool, String> {
    let Ok(spec) = std::env::var(ENV_SPEC) else {
        return Ok(false);
    };
    if spec.trim().is_empty() {
        return Ok(false);
    }
    let seed = std::env::var(ENV_SEED)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    activate(&spec, seed)?;
    Ok(true)
}

/// True while a schedule is active.
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Process-cumulative count of injected faults (never reset; the
/// daemon's `health` reply reports it).
#[must_use]
pub fn injected_total() -> u64 {
    INJECTED.load(Ordering::Relaxed)
}

/// The active spec string, if any.
#[must_use]
pub fn active_spec() -> Option<String> {
    registry().map(|r| r.spec.clone())
}

/// Per-term `(pattern, hits, fired)` counters of the active schedule.
#[must_use]
pub fn point_report() -> Vec<(String, u64, u64)> {
    registry()
        .map(|r| {
            r.terms
                .iter()
                .map(|t| {
                    (
                        t.pattern.clone(),
                        t.hits.load(Ordering::Relaxed),
                        t.fired.load(Ordering::Relaxed),
                    )
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Consult the failpoint named `point`. `None` (the overwhelmingly
/// common answer) costs one relaxed atomic load when no schedule is
/// active.
#[inline]
pub fn check(point: &str) -> Option<Fault> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    check_slow(point)
}

#[cold]
fn check_slow(point: &str) -> Option<Fault> {
    let reg = registry()?;
    for term in &reg.terms {
        if !term.matches(point) {
            continue;
        }
        let hit = term.hits.fetch_add(1, Ordering::SeqCst) + 1; // 1-based
        let fire = match term.when {
            When::Always => true,
            When::Once => hit == 1,
            When::FirstN(n) => hit <= n,
            When::AfterN(n) => hit > n,
            When::OneIn(n) => coin(reg.seed, &term.pattern, hit, n),
        };
        if fire {
            term.fired.fetch_add(1, Ordering::Relaxed);
            INJECTED.fetch_add(1, Ordering::Relaxed);
            return Some(term.fault);
        }
        return None; // first matching term decides, firing or not
    }
    None
}

/// Error-only injection: `Err` with the scheduled fault, `Ok(())`
/// otherwise. The idiom at sites that cannot express partial progress:
///
/// ```ignore
/// e9failpt::fail_io("cache.disk.read")?;
/// ```
///
/// # Errors
///
/// The injected fault as an `io::Error` (a `Partial` fault surfaces as
/// `WriteZero` here).
#[inline]
pub fn fail_io(point: &str) -> io::Result<()> {
    match check(point) {
        None => Ok(()),
        Some(f) => Err(f.to_io_error()),
    }
}

/// Write-site injection: how many of `len` bytes the write at `point`
/// may accept. A `Partial` fault halves the write (minimum 1 byte, so
/// retry loops always make progress); error faults are returned as
/// errors; no fault passes `len` through.
///
/// # Errors
///
/// The injected non-partial fault as an `io::Error`.
#[inline]
pub fn write_len(point: &str, len: usize) -> io::Result<usize> {
    match check(point) {
        None => Ok(len),
        Some(Fault::Partial) => Ok((len / 2).max(1).min(len)),
        Some(f) => Err(f.to_io_error()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_when_disabled() {
        // No scope gate held: relies on other tests using scoped guards.
        assert_eq!(check("nothing.here"), None);
        assert!(fail_io("nothing.here").is_ok());
        assert_eq!(write_len("nothing.here", 100).unwrap(), 100);
    }

    #[test]
    fn exact_and_wildcard_matching() {
        let _g = activate_scoped("cache.disk.*=eio,front.output.stage=enospc", 1).unwrap();
        assert_eq!(check("cache.disk.read"), Some(Fault::Eio));
        assert_eq!(check("cache.disk.publish"), Some(Fault::Eio));
        assert_eq!(check("front.output.stage"), Some(Fault::Enospc));
        assert_eq!(check("front.output.commit"), None);
    }

    #[test]
    fn first_matching_term_decides() {
        let _g = activate_scoped("a.b=eio@after:100,a.*=enospc", 1).unwrap();
        // `a.b` matches the first term, which does not fire yet — the
        // wildcard must NOT be consulted as a fallback.
        assert_eq!(check("a.b"), None);
        assert_eq!(check("a.c"), Some(Fault::Enospc));
    }

    #[test]
    fn first_n_fires_then_clears() {
        let _g = activate_scoped("p=eio@first:3", 1).unwrap();
        for _ in 0..3 {
            assert_eq!(check("p"), Some(Fault::Eio));
        }
        for _ in 0..10 {
            assert_eq!(check("p"), None); // the fault has cleared
        }
    }

    #[test]
    fn once_and_after_schedules() {
        let _g = activate_scoped("a=eintr@once,b=partial@after:2", 7).unwrap();
        assert_eq!(check("a"), Some(Fault::Eintr));
        assert_eq!(check("a"), None);
        assert_eq!(check("b"), None);
        assert_eq!(check("b"), None);
        assert_eq!(check("b"), Some(Fault::Partial));
        assert_eq!(check("b"), Some(Fault::Partial));
    }

    #[test]
    fn one_in_n_is_seed_deterministic() {
        let run = |seed| {
            let _g = activate_scoped("p=eio@1in3", seed).unwrap();
            (0..64).map(|_| check("p").is_some()).collect::<Vec<_>>()
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should differ somewhere in 64 draws");
        let fired = a.iter().filter(|&&f| f).count();
        assert!(fired > 0 && fired < 64, "1in3 fired {fired}/64");
    }

    #[test]
    fn injected_total_counts_fires_not_hits() {
        let before = injected_total();
        let _g = activate_scoped("p=eio@first:2", 1).unwrap();
        for _ in 0..5 {
            let _ = check("p");
        }
        assert_eq!(injected_total() - before, 2);
        let report = point_report();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].1, 5); // hits
        assert_eq!(report[0].2, 2); // fired
    }

    #[test]
    fn write_len_halves_partial_and_errors_others() {
        let _g = activate_scoped("part=partial,err=enospc", 1).unwrap();
        assert_eq!(write_len("part", 100).unwrap(), 50);
        assert_eq!(write_len("part", 1).unwrap(), 1);
        let e = write_len("err", 100).unwrap_err();
        assert_eq!(e.raw_os_error(), Some(28));
        assert_eq!(write_len("untouched", 9).unwrap(), 9);
    }

    #[test]
    fn fault_kinds_map_to_real_errnos() {
        assert_eq!(Fault::Enospc.to_io_error().raw_os_error(), Some(28));
        assert_eq!(Fault::Eio.to_io_error().raw_os_error(), Some(5));
        assert_eq!(
            Fault::Eintr.to_io_error().kind(),
            io::ErrorKind::Interrupted
        );
        assert_eq!(Fault::RenameFail.to_io_error().raw_os_error(), Some(18));
        for f in [
            Fault::Enospc,
            Fault::Eio,
            Fault::Eintr,
            Fault::Partial,
            Fault::RenameFail,
        ] {
            assert_eq!(Fault::from_name(f.name()), Some(f));
        }
    }

    #[test]
    fn spec_errors_are_named() {
        assert!(activate_scoped("", 1).is_err());
        assert!(activate_scoped("noequals", 1).unwrap_err().contains("noequals"));
        assert!(activate_scoped("p=unknownfault", 1)
            .unwrap_err()
            .contains("unknownfault"));
        assert!(activate_scoped("p=eio@sometimes", 1)
            .unwrap_err()
            .contains("sometimes"));
        assert!(activate_scoped("p=eio@1in0", 1).is_err());
        assert!(!is_enabled(), "failed activation must stay inert");
    }

    #[test]
    fn scoped_guard_deactivates_on_drop() {
        {
            let _g = activate_scoped("p=eio", 1).unwrap();
            assert!(is_enabled());
            assert_eq!(active_spec().as_deref(), Some("p=eio"));
        }
        assert!(!is_enabled());
        assert_eq!(check("p"), None);
        assert_eq!(active_spec(), None);
    }
}
