//! Deterministic retry primitives: the bounded-doubling backoff
//! schedule shared by every reconnect/retry path, and a bounded EINTR
//! loop for raw syscall sites.
//!
//! Before this module existed, `ProtoClient::connect_unix_retry` and
//! `connect_tcp_retry` each hand-rolled the same 20 ms → ×2 → 1 s-cap
//! loop. The schedule now lives here once, is computable without
//! sleeping (so tests pin it exactly), and is reused by the I/O retry
//! paths the failpoint campaign drives.

use std::io;
use std::time::Duration;

/// A bounded-doubling backoff schedule.
///
/// `standard(attempts)` reproduces the wire client's historical
/// behavior: `attempts` total tries, sleeping 20 ms before the second,
/// doubling each retry, capped at 1 s. [`Backoff::next_delay`] yields
/// the sleep to take before the *next* attempt, or `None` once the
/// attempt budget is spent — so the schedule itself is a pure value,
/// testable without a clock.
#[derive(Debug, Clone)]
pub struct Backoff {
    next: Duration,
    cap: Duration,
    remaining: usize,
}

impl Backoff {
    /// First delay of the standard schedule (20 ms).
    pub const FIRST_DELAY: Duration = Duration::from_millis(20);
    /// Delay cap of the standard schedule (1 s).
    pub const MAX_DELAY: Duration = Duration::from_millis(1_000);

    /// The standard schedule for `attempts` total tries (minimum 1).
    #[must_use]
    pub fn standard(attempts: usize) -> Backoff {
        Backoff::new(attempts, Backoff::FIRST_DELAY, Backoff::MAX_DELAY)
    }

    /// A custom schedule: `attempts` total tries, starting at `first`,
    /// doubling up to `cap`.
    #[must_use]
    pub fn new(attempts: usize, first: Duration, cap: Duration) -> Backoff {
        Backoff {
            next: first,
            cap,
            remaining: attempts.max(1) - 1,
        }
    }

    /// The delay to sleep before the next attempt, or `None` when the
    /// attempt budget is exhausted (surface the last error).
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let d = self.next;
        self.next = (d * 2).min(self.cap);
        Some(d)
    }

    /// The full delay sequence of a fresh schedule (for tests and
    /// documentation; consumes nothing from `self`).
    #[must_use]
    pub fn delays(mut self) -> Vec<Duration> {
        let mut out = Vec::new();
        while let Some(d) = self.next_delay() {
            out.push(d);
        }
        out
    }
}

/// Run `op` until it succeeds or the backoff budget is spent, sleeping
/// the schedule's delay between attempts. Returns the **last** error
/// when every attempt fails.
///
/// # Errors
///
/// The final attempt's error.
pub fn with_backoff<T, E>(
    mut backoff: Backoff,
    mut op: impl FnMut() -> Result<T, E>,
) -> Result<T, E> {
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => match backoff.next_delay() {
                Some(d) => std::thread::sleep(d),
                None => return Err(e),
            },
        }
    }
}

/// Default budget of consecutive EINTRs absorbed before giving up. A
/// real signal storm this deep means the process is being torn down;
/// surfacing the error beats looping forever.
pub const EINTR_BUDGET: usize = 16;

/// Retry `op` across up to `budget` consecutive
/// [`io::ErrorKind::Interrupted`] results; any other outcome (success
/// or a different error) is returned immediately.
///
/// # Errors
///
/// The first non-EINTR error, or EINTR itself once the budget is spent.
pub fn retry_interrupted<T>(
    budget: usize,
    mut op: impl FnMut() -> io::Result<T>,
) -> io::Result<T> {
    let mut left = budget;
    loop {
        match op() {
            Err(e) if e.kind() == io::ErrorKind::Interrupted && left > 0 => left -= 1,
            other => return other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_schedule_doubles_to_the_cap() {
        let ms: Vec<u64> = Backoff::standard(9)
            .delays()
            .iter()
            .map(|d| u64::try_from(d.as_millis()).unwrap())
            .collect();
        assert_eq!(ms, vec![20, 40, 80, 160, 320, 640, 1000, 1000]);
    }

    #[test]
    fn attempt_budget_bounds_the_delays() {
        assert!(Backoff::standard(0).delays().is_empty());
        assert!(Backoff::standard(1).delays().is_empty());
        assert_eq!(Backoff::standard(4).delays().len(), 3);
    }

    #[test]
    fn with_backoff_returns_the_last_error() {
        let mut calls = 0;
        let r: Result<(), String> = with_backoff(
            Backoff::new(3, Duration::from_millis(1), Duration::from_millis(1)),
            || {
                calls += 1;
                Err(format!("attempt {calls}"))
            },
        );
        assert_eq!(calls, 3);
        assert_eq!(r.unwrap_err(), "attempt 3");
    }

    #[test]
    fn with_backoff_stops_on_first_success() {
        let mut calls = 0;
        let r: Result<u32, ()> = with_backoff(
            Backoff::new(5, Duration::from_millis(1), Duration::from_millis(1)),
            || {
                calls += 1;
                if calls == 2 {
                    Ok(7)
                } else {
                    Err(())
                }
            },
        );
        assert_eq!(r.unwrap(), 7);
        assert_eq!(calls, 2);
    }

    #[test]
    fn retry_interrupted_absorbs_eintr_within_budget() {
        let mut eintrs = 3;
        let r = retry_interrupted(EINTR_BUDGET, || {
            if eintrs > 0 {
                eintrs -= 1;
                Err(io::Error::new(io::ErrorKind::Interrupted, "sig"))
            } else {
                Ok(42)
            }
        });
        assert_eq!(r.unwrap(), 42);
    }

    #[test]
    fn retry_interrupted_gives_up_past_the_budget() {
        let mut calls = 0;
        let r: io::Result<()> = retry_interrupted(2, || {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::Interrupted, "sig"))
        });
        assert_eq!(calls, 3); // initial try + 2 retries
        assert_eq!(r.unwrap_err().kind(), io::ErrorKind::Interrupted);
    }

    #[test]
    fn retry_interrupted_passes_other_errors_through() {
        let r: io::Result<()> = retry_interrupted(8, || {
            Err(io::Error::new(io::ErrorKind::Other, "real"))
        });
        assert_eq!(r.unwrap_err().kind(), io::ErrorKind::Other);
    }
}
