//! Corner-case tactic tests: forcing T3 (neighbour eviction), single-byte
//! patch sites (limitation L2), and the S1 reverse-order advantage.

use e9patch::{PatchRequest, Planner, RewriteConfig, Rewriter, TacticKind, Tactics, Template};
use e9vm::{load_elf, Vm};
use e9x86::asm::Asm;
use e9x86::decode::linear_sweep;
use e9x86::insn::Insn;
use e9x86::reg::{Reg, Width};
use std::collections::BTreeMap;

/// Build a binary from raw code at the default non-PIE base.
fn make_binary(code: Vec<u8>, data: Option<(u64, Vec<u8>)>) -> (Vec<u8>, Vec<Insn>) {
    let disasm = linear_sweep(&code, 0x401000);
    let mut b = e9elf::build::ElfBuilder::exec(0x400000);
    b.text(code, 0x401000);
    if let Some((vaddr, bytes)) = data {
        b.data(bytes, vaddr);
    }
    b.entry(0x401000);
    (b.build(), disasm)
}

fn run(binary: &[u8]) -> e9vm::RunResult {
    let mut vm = Vm::new();
    load_elf(&mut vm, binary).expect("load");
    vm.run(10_000_000).expect("run")
}

/// The paper's Figure 1 scenario: a non-PIE binary where the patch
/// instruction's pun windows are all negative (invalid), forcing T2/T3.
#[test]
fn figure1_shape_requires_advanced_tactics() {
    // mov %rax,(%rbx); add $32,%rax; xor %rax,%rcx; cmpl $77,-4(%rbx); ...
    // The fixed bytes after the mov (48 83 / 48 83 c0 / 48 83 c0 20) give
    // windows 0x8348xxxx (neg), 0xc08348xx (neg), 0x20c08348 (pos).
    // With T1 disabled the site is only patchable via T2/T3.
    let code = vec![
        0x48, 0x89, 0x03, // mov %rax,(%rbx)      <- patch site
        0x48, 0x83, 0xC0, 0x20, // add $32,%rax
        0x48, 0x31, 0xC1, // xor %rax,%rcx
        0x83, 0x7B, 0xFC, 0x4D, // cmpl $77,-4(%rbx)
        0xC3, // ret
        0x0F, 0x1F, 0x44, 0x00, 0x00, // nop padding
        0x0F, 0x1F, 0x44, 0x00, 0x00,
    ];
    let (bin, disasm) = make_binary(code, None);
    let insns: BTreeMap<u64, Insn> = disasm.iter().map(|i| (i.addr, *i)).collect();

    // Base-only fails (both pun windows negative).
    let elf = e9elf::Elf::parse(&bin).unwrap();
    let cfg = RewriteConfig {
        tactics: Tactics::base_only(),
        ..RewriteConfig::default()
    };
    let mut planner = Planner::new(elf.clone(), &insns, cfg, &[]);
    assert_eq!(planner.patch_site(0x401000, &Template::Empty).unwrap(), None);

    // With T2 enabled (no T1/T3), successor eviction unlocks the site.
    let cfg = RewriteConfig {
        tactics: Tactics {
            t1: false,
            t2: true,
            t3: false,
        },
        ..RewriteConfig::default()
    };
    let mut planner = Planner::new(elf.clone(), &insns, cfg, &[]);
    let got = planner.patch_site(0x401000, &Template::Empty).unwrap();
    assert_eq!(got, Some(TacticKind::T2), "successor eviction expected");

    // With only T3 enabled, neighbour eviction handles it.
    let cfg = RewriteConfig {
        tactics: Tactics {
            t1: false,
            t2: false,
            t3: true,
        },
        ..RewriteConfig::default()
    };
    let mut planner = Planner::new(elf, &insns, cfg, &[]);
    let got = planner.patch_site(0x401000, &Template::Empty).unwrap();
    assert_eq!(got, Some(TacticKind::T3), "neighbour eviction expected");
}

/// T3 end-to-end: patch via forced T3, then verify execution through the
/// patch site AND a jump straight to the evicted victim's address (both
/// must behave as the original).
#[test]
fn t3_preserves_victim_semantics() {
    // Program: rax = 5; [patch site] rax += 2 (2-byte add via reg forms);
    // victim region follows; exit(rax-ish computation).
    let mut a = Asm::new(0x401000);
    a.mov_ri32(Reg::Rax, 5);
    // A 3-byte instruction whose pun windows will be negative: followed by
    // bytes starting 0x89/0x83... craft: mov %rax,%rsi (48 89 c6), then
    // add $32,%rsi etc. We don't control exact windows here; instead force
    // T3 via config and assert the tactic actually used.
    a.mov_rr(Width::Q, Reg::Rsi, Reg::Rax); // patch site (3 bytes)
    a.add_ri(Width::Q, Reg::Rsi, 32); // successor / potential victim
    a.xor_rr(Width::Q, Reg::Rax, Reg::Rcx);
    a.mov_rr(Width::Q, Reg::Rdi, Reg::Rsi);
    a.and_ri(Width::Q, Reg::Rdi, 0x7F);
    a.mov_ri32(Reg::Rax, 60);
    a.syscall();
    a.nops(16);
    let code = a.finish().unwrap();
    let (bin, disasm) = make_binary(code, None);
    let patch_site = disasm[1].addr;
    let victim_region: Vec<u64> = disasm[2..5].iter().map(|i| i.addr).collect();

    let orig = run(&bin);

    let cfg = RewriteConfig {
        tactics: Tactics {
            t1: false,
            t2: false,
            t3: true,
        },
        ..RewriteConfig::default()
    };
    let out = Rewriter::new(cfg)
        .rewrite(
            &bin,
            &disasm,
            &[PatchRequest {
                addr: patch_site,
                template: Template::Empty,
            }],
            &[],
        )
        .unwrap();
    if out.stats.t3 == 0 {
        // Base tactics were never tried (they're always on) and happened
        // to succeed — that's fine; then this binary exercises no T3 and
        // the test is vacuous for the victim check.
        assert_eq!(out.stats.succeeded(), 1);
    }
    let patched = run(&out.binary);
    assert_eq!(patched.exit_code, orig.exit_code);

    // Drive control flow directly at each instruction in the victim
    // region (they may have been evicted): set up a VM, run the loader,
    // then jump there with matching register states in both binaries.
    for &addr in &victim_region {
        let mut vms = Vec::new();
        for binary in [&bin, &out.binary] {
            let mut vm = Vm::new();
            load_elf(&mut vm, binary).unwrap();
            let mut guard = 0;
            while vm.cpu.rip != 0x401000 {
                vm.step().unwrap();
                guard += 1;
                assert!(guard < 100_000);
            }
            for r in e9x86::Reg::ALL {
                if r != Reg::Rsp {
                    vm.cpu.set(r, 11);
                }
            }
            vm.cpu.flags = Default::default();
            vm.cpu.rip = addr;
            let r = vm.run(1_000_000).unwrap();
            vms.push((r.exit_code, r.output));
        }
        assert_eq!(vms[0], vms[1], "divergence entering victim at {addr:#x}");
    }
}

/// Limitation L2: single-byte instructions (push/pop/ret) can only be
/// patched by T3's fixed-rel8 path or B0 — never by B1/B2/T1.
#[test]
fn single_byte_sites_limited() {
    let mut a = Asm::new(0x401000);
    a.mov_ri32(Reg::Rax, 1);
    a.push_r(Reg::Rax); // 1-byte patch site
    a.pop_r(Reg::Rcx); // 1-byte
    a.mov_rr(Width::Q, Reg::Rdi, Reg::Rcx);
    a.mov_ri32(Reg::Rax, 60);
    a.syscall();
    a.nops(24);
    let code = a.finish().unwrap();
    let (bin, disasm) = make_binary(code, None);
    let push_addr = disasm[1].addr;
    assert_eq!(disasm[1].len(), 1);

    let insns: BTreeMap<u64, Insn> = disasm.iter().map(|i| (i.addr, *i)).collect();
    let elf = e9elf::Elf::parse(&bin).unwrap();

    // B1/B2/T1 can never patch a 1-byte site at a low base: B2's single
    // pun has 0 free bytes and a successor-determined window; T1 needs
    // padding room. (The pun *may* fluke positive; assert only that plain
    // B1 is impossible by checking the outcome tactic.)
    let mut planner = Planner::new(
        elf,
        &insns,
        RewriteConfig {
            b0_fallback: true,
            ..RewriteConfig::default()
        },
        &[],
    );
    let got = planner.patch_site(push_addr, &Template::Empty).unwrap();
    assert!(
        matches!(
            got,
            Some(TacticKind::B2 | TacticKind::T2 | TacticKind::T3 | TacticKind::B0)
        ),
        "unexpected tactic {got:?} for 1-byte site"
    );

    // Whatever was chosen, behaviour is preserved.
    let orig = run(&bin);
    let out = Rewriter::new(RewriteConfig {
        b0_fallback: true,
        ..RewriteConfig::default()
    })
    .rewrite(
        &bin,
        &disasm,
        &[PatchRequest {
            addr: push_addr,
            template: Template::Empty,
        }],
        &[],
    )
    .unwrap();
    assert_eq!(out.stats.failed, 0);
    let patched = run(&out.binary);
    assert_eq!(patched.exit_code, orig.exit_code);
}

/// S1: processing sites in reverse address order never yields *less*
/// coverage than ascending order (puns only depend on successors).
#[test]
fn reverse_order_beats_ascending() {
    let prog = e9synth::generate(&e9synth::Profile::tiny("s1test", false));
    let insns: BTreeMap<u64, Insn> = prog.disasm.iter().map(|i| (i.addr, *i)).collect();
    let sites: Vec<u64> = prog
        .disasm
        .iter()
        .filter(|i| i.kind.is_jump())
        .map(|i| i.addr)
        .collect();
    let elf = e9elf::Elf::parse(&prog.binary).unwrap();

    let mut desc = Planner::new(elf.clone(), &insns, RewriteConfig::default(), &[]);
    for &s in sites.iter().rev() {
        desc.patch_site(s, &Template::Empty).unwrap();
    }
    let mut asc = Planner::new(elf, &insns, RewriteConfig::default(), &[]);
    for &s in sites.iter() {
        asc.patch_site(s, &Template::Empty).unwrap();
    }
    assert!(
        desc.stats.succeeded() >= asc.stats.succeeded(),
        "S1 should not lose to ascending order: desc={:?} asc={:?}",
        desc.stats,
        asc.stats
    );
}

/// An unrelocatable patch site (`loop` has no rel32 form) fails every
/// tactic gracefully, leaves the binary intact, and records a failure.
#[test]
fn loop_instruction_fails_gracefully() {
    let mut a = Asm::new(0x401000);
    let top = a.fresh_label();
    a.mov_ri32(Reg::Rcx, 3);
    a.bind(top);
    a.add_ri(Width::Q, Reg::Rax, 1);
    a.raw(&[0xE2, 0xFA]); // loop top
    a.mov_rr(Width::Q, Reg::Rdi, Reg::Rax);
    a.and_ri(Width::Q, Reg::Rdi, 0x7F);
    a.mov_ri32(Reg::Rax, 60);
    a.syscall();
    a.nops(16);
    let code = a.finish().unwrap();
    let (bin, disasm) = make_binary(code, None);
    let site = disasm
        .iter()
        .find(|i| i.kind == e9x86::Kind::LoopRel8)
        .unwrap()
        .addr;
    let orig = run(&bin);
    let out = Rewriter::new(RewriteConfig {
        b0_fallback: true, // even B0 cannot help: the trampoline cannot host `loop`
        ..RewriteConfig::default()
    })
    .rewrite(
        &bin,
        &disasm,
        &[PatchRequest {
            addr: site,
            template: Template::Empty,
        }],
        &[],
    )
    .unwrap();
    assert_eq!(out.stats.failed, 1, "{:?}", out.stats);
    assert_eq!(out.reports[0].tactic, None);
    // Binary unchanged at the site and still correct.
    let patched = run(&out.binary);
    assert_eq!(patched.exit_code, orig.exit_code);
}

/// Site reports account for every request with consistent tactic counts.
#[test]
fn site_reports_match_stats() {
    let prog = e9synth::generate(&e9synth::Profile::tiny("reports", false));
    let reqs: Vec<PatchRequest> = prog
        .disasm
        .iter()
        .filter(|i| i.kind.is_jump())
        .map(|i| PatchRequest {
            addr: i.addr,
            template: Template::Empty,
        })
        .collect();
    let out = Rewriter::new(RewriteConfig::default())
        .rewrite(&prog.binary, &prog.disasm, &reqs, &[])
        .unwrap();
    assert_eq!(out.reports.len(), reqs.len());
    let by_tactic = |k| out.reports.iter().filter(|r| r.tactic == Some(k)).count();
    assert_eq!(by_tactic(TacticKind::B1), out.stats.b1);
    assert_eq!(by_tactic(TacticKind::B2), out.stats.b2);
    assert_eq!(by_tactic(TacticKind::T1), out.stats.t1);
    assert_eq!(by_tactic(TacticKind::T2), out.stats.t2);
    assert_eq!(by_tactic(TacticKind::T3), out.stats.t3);
    // Reports arrive in reverse address order (S1).
    assert!(out.reports.windows(2).all(|w| w[0].addr > w[1].addr));
    // Every successful report has a trampoline address outside the
    // original binary's loaded segments.
    let elf = e9elf::Elf::parse(&prog.binary).unwrap();
    let segs: Vec<(u64, u64)> = elf
        .load_segments()
        .map(|p| (p.p_vaddr, p.p_vaddr + p.p_memsz))
        .collect();
    for r in out.reports.iter().filter(|r| r.tactic.is_some()) {
        let t = r.trampoline.expect("trampoline for successful site");
        assert!(
            segs.iter().all(|&(lo, hi)| t < lo || t >= hi),
            "trampoline {t:#x} inside the image"
        );
    }
}
