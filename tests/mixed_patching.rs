//! §5.1 "Mixing Patched/Non-Patched Code": because E9Patch never moves
//! instructions, a patched shared object can be used by a *non-patched*
//! main program without rewriting the dependency tree (no callback
//! problem). This test builds a "library" and a "main executable" at
//! disjoint addresses, patches only the library, and runs main → library
//! calls across the boundary.

use e9front::{instrument_with_disasm, Application, Options, Payload};
use e9vm::{load_elf, Vm};
use e9x86::asm::Asm;
use e9x86::decode::linear_sweep;
use e9x86::reg::{Reg, Width};

const LIB_BASE: u64 = 0x7000_0000_0000;
const LIB_FN: u64 = LIB_BASE + 0x1000;
const MAIN_ENTRY: u64 = 0x401000;

/// The "shared library": one exported function at a fixed address that
/// doubles its argument and adds 3, with internal branching (A1 sites).
fn build_lib() -> (Vec<u8>, Vec<e9x86::Insn>) {
    let mut a = Asm::new(LIB_FN);
    let skip = a.fresh_label();
    a.mov_rr(Width::Q, Reg::Rax, Reg::Rdi);
    a.add_rr(Width::Q, Reg::Rax, Reg::Rdi);
    a.cmp_ri(Width::Q, Reg::Rax, 100);
    a.jcc(e9x86::Cond::G, skip); // A1 site
    a.add_ri(Width::Q, Reg::Rax, 3);
    a.bind(skip);
    a.ret();
    a.nops(16); // pun fodder at end of section
    let code = a.finish().unwrap();
    let disasm = linear_sweep(&code, LIB_FN);
    let mut b = e9elf::build::ElfBuilder::pie(LIB_BASE);
    b.text(code, LIB_FN);
    // A library has no meaningful entry; the rewriter still injects a
    // loader there, so point it at the function (harmless for this test —
    // the test drives mapping via the loader below).
    b.entry(LIB_FN);
    (b.build(), disasm)
}

/// The "main executable": calls the library function at its absolute
/// address and exits with the result.
fn build_main() -> Vec<u8> {
    let mut a = Asm::new(MAIN_ENTRY);
    a.mov_ri32(Reg::Rdi, 20);
    a.mov_ri64(Reg::Rax, LIB_FN as i64);
    a.call_ind_r(Reg::Rax);
    a.mov_rr(Width::Q, Reg::Rdi, Reg::Rax); // 20*2+3 = 43
    a.mov_ri32(Reg::Rax, 60);
    a.syscall();
    let code = a.finish().unwrap();
    let mut b = e9elf::build::ElfBuilder::exec(0x400000);
    b.text(code, MAIN_ENTRY);
    b.entry(MAIN_ENTRY);
    b.build()
}

/// Load both images into one VM; run the patched library's injected
/// loader first (the dynamic linker would do this via the library's
/// init path), then start main.
fn run_mixed(main_bin: &[u8], lib_bin: &[u8], lib_entry_is_loader: bool) -> i32 {
    let mut vm = Vm::new();
    // Load the library first so its loader (if any) is registered with
    // the library's own file image as fd 100.
    load_elf(&mut vm, lib_bin).expect("load lib");
    if lib_entry_is_loader {
        // Execute the library's injected loader until it hands control to
        // the library's "original entry" (our lib function).
        let mut guard = 0;
        while vm.cpu.rip != LIB_FN {
            vm.step().expect("lib loader");
            guard += 1;
            assert!(guard < 1_000_000, "lib loader diverged");
        }
    }
    // Now load main (does not disturb the lib's high mappings) and run it.
    load_elf(&mut vm, main_bin).expect("load main");
    let r = vm.run(10_000_000).expect("run main");
    r.exit_code
}

#[test]
fn unpatched_main_calls_unpatched_lib() {
    let (lib, _) = build_lib();
    let main_bin = build_main();
    assert_eq!(run_mixed(&main_bin, &lib, false), 43);
}

#[test]
fn unpatched_main_calls_patched_lib() {
    let (lib, disasm) = build_lib();
    let main_bin = build_main();
    let out = instrument_with_disasm(
        &lib,
        &disasm,
        &Options::new(Application::A1Jumps, Payload::Empty),
    )
    .expect("patch lib");
    assert!(out.rewrite.stats.succeeded() > 0, "lib jump patched");
    // Main was never rewritten, yet the call into the patched library
    // works because the function's address did not move.
    assert_eq!(run_mixed(&main_bin, &out.rewrite.binary, true), 43);
}

#[test]
fn patched_lib_file_is_self_contained() {
    // The patched library parses as a standalone ELF with its loader as
    // entry and its trampolines reachable through the mapping table.
    let (lib, disasm) = build_lib();
    let out = instrument_with_disasm(
        &lib,
        &disasm,
        &Options::new(Application::A1Jumps, Payload::Empty),
    )
    .unwrap();
    let elf = e9elf::Elf::parse(&out.rewrite.binary).unwrap();
    assert!(elf.is_pie());
    assert_eq!(elf.entry(), out.rewrite.loader_addr);
}
