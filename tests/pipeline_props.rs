//! Whole-pipeline property tests: for randomized synthetic programs and
//! randomized rewriter configurations, the patched binary must behave
//! identically to the original. This is the reproduction's strongest
//! correctness oracle, exercising generator → ELF → tactics → grouping →
//! loader → emulator end to end.

use e9front::{instrument_with_disasm, Application, Options, Payload};
use e9patch::{RewriteConfig, Tactics};
use e9synth::{generate, Profile};
use e9qcheck::prelude::*;

fn random_profile(name: String, pie: bool, funcs: usize, switch_pct: u32, iters: u32) -> Profile {
    let mut p = Profile::tiny(&name, pie);
    p.funcs = funcs;
    p.switch_pct = switch_pct;
    p.loop_iters = iters;
    p
}

props! {
    #![cases = 12]

    /// A1 instrumentation preserves behaviour for arbitrary programs,
    /// PIE-ness, tactic sets and grouping configurations.
    #[test]
    fn a1_preserves_behaviour(
        seed in alpha(6),
        pie in any::<bool>(),
        funcs in 2usize..8,
        switch_pct in 0u32..100,
        iters in 2u32..8,
        t1 in any::<bool>(),
        t2 in any::<bool>(),
        t3 in any::<bool>(),
        grouping in any::<bool>(),
        granularity in 1u64..5,
        b0 in any::<bool>(),
    ) {
        let p = random_profile(format!("prop-{seed}"), pie, funcs, switch_pct, iters);
        let sb = generate(&p);
        let orig = e9vm::run_binary(&sb.binary, 400_000_000).expect("orig run");
        let cfg = RewriteConfig {
            tactics: Tactics { t1, t2, t3 },
            b0_fallback: b0,
            grouping,
            granularity,
            ..RewriteConfig::default()
        };
        let out = instrument_with_disasm(
            &sb.binary,
            &sb.disasm,
            &Options { app: Application::A1Jumps, payload: Payload::Empty, config: cfg },
        ).expect("instrument");
        let patched = e9vm::run_binary(&out.rewrite.binary, 2_000_000_000).expect("patched run");
        prop_assert_eq!(&patched.output, &orig.output);
        prop_assert_eq!(patched.exit_code, orig.exit_code);
        // Accounting invariant: every request resolved one way or another.
        prop_assert_eq!(out.rewrite.stats.total(), out.sites);
        // Static translation validation: the output upholds the
        // control-flow-agnostic invariants.
        let orig_elf = e9elf::Elf::parse(&sb.binary).unwrap();
        let patched_elf = e9elf::Elf::parse(&out.rewrite.binary).unwrap();
        let verdict = e9patch::verify::verify(
            &orig_elf,
            &patched_elf,
            &sb.disasm,
            &out.rewrite.mappings,
            &out.rewrite.reports,
        );
        prop_assert!(verdict.is_ok(), "verifier: {:?}", verdict.err());
    }

    /// A2 + Counter payload preserves behaviour and counts every executed
    /// patched site.
    #[test]
    fn a2_counter_preserves_behaviour(
        seed in alpha(6),
        pie in any::<bool>(),
        funcs in 2usize..6,
        iters in 2u32..6,
    ) {
        let p = random_profile(format!("propc-{seed}"), pie, funcs, 40, iters);
        let sb = generate(&p);
        let orig = e9vm::run_binary(&sb.binary, 400_000_000).expect("orig run");
        let out = instrument_with_disasm(
            &sb.binary,
            &sb.disasm,
            &Options::new(Application::A2HeapWrites, Payload::Counter),
        ).expect("instrument");
        let mut vm = e9vm::Vm::new();
        e9vm::load_elf(&mut vm, &out.rewrite.binary).expect("load");
        let patched = vm.run(2_000_000_000).expect("patched run");
        prop_assert_eq!(&patched.output, &orig.output);
        prop_assert_eq!(patched.exit_code, orig.exit_code);
        if out.rewrite.stats.succeeded() > 0 {
            let count = vm.mem.read_le(out.counter_addr.unwrap(), 8).unwrap();
            // The program performs heap writes every loop iteration, so a
            // successful instrumentation must have counted something.
            prop_assert!(count > 0, "counter stayed zero");
        }
    }

    /// LowFat hardening never reports violations on correct programs,
    /// regardless of program shape.
    #[test]
    fn lowfat_no_false_positives(
        seed in alpha(6),
        funcs in 2usize..6,
        iters in 2u32..6,
    ) {
        let p = random_profile(format!("proplf-{seed}"), false, funcs, 30, iters);
        let sb = generate(&p);
        let out = instrument_with_disasm(
            &sb.binary,
            &sb.disasm,
            &Options::new(Application::A2HeapWrites, Payload::LowFat),
        ).expect("instrument");
        let mut vm = e9vm::Vm::new();
        vm.set_heap(Box::new(e9lowfat::LowFatAllocator::new()));
        e9vm::load_elf(&mut vm, &out.rewrite.binary).expect("load");
        vm.run(2_000_000_000).expect("patched run");
        let v = vm.mem.read_le(out.violations_addr.unwrap(), 8).unwrap();
        prop_assert_eq!(v, 0, "false-positive redzone violations");
    }
}
