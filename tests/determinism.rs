//! Seed-pinned determinism: the whole pipeline — synthesis, disassembly,
//! tactic planning, grouping, emission — must be a pure function of the
//! seed. Two runs with the same `E9_SEED` produce byte-identical binaries
//! and identical stats summaries; reproduction claims rest on this.
//!
//! The seed defaults to 42 and can be pinned externally:
//! `E9_SEED=7 cargo test --test determinism`.

use e9front::{instrument_with_disasm, Application, Options, Payload};
use e9synth::{generate, Profile};

fn seed_from_env() -> u64 {
    std::env::var("E9_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(42)
}

/// One full synth + rewrite run: returns (input ELF, patched ELF, stats
/// summary line).
fn full_run(seed: u64, pie: bool, app: Application, payload: Payload) -> (Vec<u8>, Vec<u8>, String) {
    let mut p = Profile::tiny("determinism", pie);
    p.seed = seed;
    p.funcs = 6;
    p.switch_pct = 60;
    let sb = generate(&p);
    let out = instrument_with_disasm(&sb.binary, &sb.disasm, &Options::new(app, payload))
        .expect("instrument");
    let summary = format!("sites={} stats={:?}", out.sites, out.rewrite.stats);
    (sb.binary, out.rewrite.binary, summary)
}

#[test]
fn same_seed_same_bytes() {
    let seed = seed_from_env();
    for (pie, app, payload) in [
        (false, Application::A1Jumps, Payload::Empty),
        (true, Application::A1Jumps, Payload::Empty),
        (false, Application::A2HeapWrites, Payload::Counter),
    ] {
        let a = full_run(seed, pie, app, payload);
        let b = full_run(seed, pie, app, payload);
        assert_eq!(a.0, b.0, "synthesized ELF differs (pie={pie})");
        assert_eq!(a.1, b.1, "patched ELF differs (pie={pie})");
        assert_eq!(a.2, b.2, "stats summary differs (pie={pie})");
    }
}

#[cfg(unix)]
#[test]
fn backend_matches_in_process() {
    // A third run driven through the e9patchd wire protocol: under the
    // same seed the backend path must reproduce the in-process bytes
    // exactly — the frontend/backend split adds no nondeterminism.
    let seed = seed_from_env();
    let (_, in_process, summary) = full_run(seed, false, Application::A1Jumps, Payload::Empty);

    let mut p = Profile::tiny("determinism", false);
    p.seed = seed;
    p.funcs = 6;
    p.switch_pct = 60;
    let sb = generate(&p);
    let opts = Options::new(Application::A1Jumps, Payload::Empty);
    let mut client = e9proto::ProtoClient::in_process().expect("loopback backend");
    let out = e9front::instrument_via_backend(&sb.binary, &sb.disasm, &opts, &mut client)
        .expect("backend instrument");
    assert_eq!(
        out.rewrite.binary, in_process,
        "backend output diverged from in-process output"
    );
    assert_eq!(
        format!("sites={} stats={:?}", out.sites, out.rewrite.stats),
        summary
    );
}

#[test]
fn different_seeds_different_bytes() {
    let seed = seed_from_env();
    let a = full_run(seed, false, Application::A1Jumps, Payload::Empty);
    let b = full_run(seed ^ 0x5DEECE66D, false, Application::A1Jumps, Payload::Empty);
    assert_ne!(a.0, b.0, "seed does not steer the generator");
}

#[test]
fn patched_binary_still_runs_deterministically() {
    let seed = seed_from_env();
    let (orig, patched, _) = full_run(seed, false, Application::A1Jumps, Payload::Empty);
    let ro = e9vm::run_binary(&orig, 400_000_000).expect("orig run");
    let rp1 = e9vm::run_binary(&patched, 2_000_000_000).expect("patched run");
    let rp2 = e9vm::run_binary(&patched, 2_000_000_000).expect("patched rerun");
    assert_eq!(ro.output, rp1.output, "rewriting changed behaviour");
    assert_eq!(rp1.output, rp2.output);
    assert_eq!(rp1.insns, rp2.insns, "emulation is not deterministic");
}
