//! End-to-end pipeline tests: assemble a program → build an ELF → rewrite
//! it with E9Patch tactics → run both versions in the emulator → compare
//! observable behaviour (exit code + output), per the reproduction's
//! correctness oracle.

use e9patch::{PatchRequest, RewriteConfig, Rewriter, Tactics, Template};
use e9vm::{load_elf, Vm};
use e9x86::asm::{Asm, Mem};
use e9x86::decode::linear_sweep;
use e9x86::insn::Insn;
use e9x86::reg::{Reg, Width};

/// Assemble a small but busy program:
/// - a counting loop with conditional branches,
/// - heap allocation and heap writes,
/// - an indirect jump through a jump table (control flow no static
///   analysis could recover),
/// - a call/ret pair,
/// - exit code = a checksum of the computation.
fn busy_program(base: u64) -> (Vec<u8>, u64) {
    let text_vaddr = base + 0x1000;
    let mut a = Asm::new(text_vaddr);
    let table = a.fresh_label();
    let case0 = a.fresh_label();
    let case1 = a.fresh_label();
    let case2 = a.fresh_label();
    let after_switch = a.fresh_label();
    let helper = a.fresh_label();
    let loop_top = a.fresh_label();
    let done = a.fresh_label();

    // r12 = checksum accumulator.
    a.mov_ri32(Reg::R12, 0);

    // p = malloc(256) → rbx. (Do this before setting the loop counter —
    // syscall clobbers %rcx.)
    a.mov_ri64(Reg::Rax, e9vm::SYS_MALLOC as i64);
    a.mov_ri32(Reg::Rdi, 256);
    a.syscall();
    a.mov_rr(Width::Q, Reg::Rbx, Reg::Rax);

    // rcx = loop counter.
    a.mov_ri32(Reg::Rcx, 20);

    a.bind(loop_top);
    // Heap write: p[rcx % 32 * 8] = rcx (A2-style site).
    a.mov_rr(Width::Q, Reg::Rdx, Reg::Rcx);
    a.and_ri(Width::Q, Reg::Rdx, 31);
    a.mov_mr(Width::Q, Mem::base_index(Reg::Rbx, Reg::Rdx, 8, 0), Reg::Rcx);
    // checksum += p[...].
    a.add_rm(Width::Q, Reg::R12, Mem::base_index(Reg::Rbx, Reg::Rdx, 8, 0));

    // switch (rcx % 3) via jump table.
    a.mov_rr(Width::Q, Reg::Rax, Reg::Rcx);
    a.mov_ri32(Reg::Rdx, 0);
    a.mov_ri32(Reg::Rsi, 3);
    // rax = rcx; rdx:rax / rsi → rdx = rcx % 3.
    a.raw(&[0x48, 0xF7, 0xF6]); // divq %rsi
    a.mov_rlabel(Reg::R11, table);
    a.jmp_ind_m(Mem::base_index(Reg::R11, Reg::Rdx, 8, 0));
    a.bind(case0);
    a.add_ri(Width::Q, Reg::R12, 1);
    a.jmp(after_switch);
    a.bind(case1);
    a.add_ri(Width::Q, Reg::R12, 10);
    a.jmp(after_switch);
    a.bind(case2);
    a.call(helper);
    a.bind(after_switch);

    // Loop control: jcc sites for A1.
    a.sub_ri(Width::Q, Reg::Rcx, 1);
    a.cmp_ri(Width::Q, Reg::Rcx, 0);
    a.jcc(e9x86::Cond::Ne, loop_top);
    a.jmp(done);

    a.bind(helper);
    a.add_ri(Width::Q, Reg::R12, 100);
    a.ret();

    a.bind(done);
    // exit(checksum & 0x7F).
    a.mov_rr(Width::Q, Reg::Rdi, Reg::R12);
    a.and_ri(Width::Q, Reg::Rdi, 0x7F);
    a.mov_ri32(Reg::Rax, 60);
    a.syscall();

    // Jump table data lives in .rodata-like tail of text (common layout).
    while !a.len().is_multiple_of(8) {
        a.raw(&[0x00]);
    }
    a.bind(table);
    a.dq_label(case0);
    a.dq_label(case1);
    a.dq_label(case2);

    (a.finish().unwrap(), text_vaddr)
}

/// The code portion (before the 3-entry jump table) as a disassembly unit.
fn disasm_code(code: &[u8], vaddr: u64) -> Vec<Insn> {
    let code_len = code.len() - 24; // strip the jump table
    linear_sweep(&code[..code_len], vaddr)
}

fn build_binary(pie: bool) -> (Vec<u8>, Vec<Insn>) {
    let base = if pie { 0x5555_5555_4000 } else { 0x400000 };
    let (code, text_vaddr) = busy_program(base);
    let disasm = disasm_code(&code, text_vaddr);
    let mut b = if pie {
        e9elf::build::ElfBuilder::pie(base)
    } else {
        e9elf::build::ElfBuilder::exec(base)
    };
    b.text(code, text_vaddr);
    b.entry(text_vaddr);
    (b.build(), disasm)
}

fn run(binary: &[u8]) -> e9vm::RunResult {
    let mut vm = Vm::new();
    load_elf(&mut vm, binary).expect("load");
    vm.run(10_000_000).expect("run")
}

fn jump_sites(disasm: &[Insn]) -> Vec<PatchRequest> {
    disasm
        .iter()
        .filter(|i| i.kind.is_jump())
        .map(|i| PatchRequest {
            addr: i.addr,
            template: Template::Empty,
        })
        .collect()
}

fn heap_write_sites(disasm: &[Insn]) -> Vec<PatchRequest> {
    disasm
        .iter()
        .filter(|i| i.is_heap_write())
        .map(|i| PatchRequest {
            addr: i.addr,
            template: Template::Empty,
        })
        .collect()
}

#[test]
fn original_program_runs() {
    let (bin, _) = build_binary(false);
    let r = run(&bin);
    assert!(r.insns > 100);
    // Deterministic checksum.
    let r2 = run(&bin);
    assert_eq!(r.exit_code, r2.exit_code);
}

#[test]
fn patched_jumps_preserve_behaviour_nonpie() {
    let (bin, disasm) = build_binary(false);
    let orig = run(&bin);
    let reqs = jump_sites(&disasm);
    assert!(reqs.len() >= 4, "expected several jump sites");
    let out = Rewriter::new(RewriteConfig::default())
        .rewrite(&bin, &disasm, &reqs, &[])
        .expect("rewrite");
    assert_eq!(
        out.stats.succeeded(),
        reqs.len(),
        "full coverage expected on this small binary: {:?}",
        out.stats
    );
    let patched = run(&out.binary);
    assert_eq!(patched.exit_code, orig.exit_code);
    assert_eq!(patched.output, orig.output);
    // Instrumentation cost: at least 2 extra jumps per patched execution.
    assert!(
        patched.insns > orig.insns,
        "patched {} vs orig {}",
        patched.insns,
        orig.insns
    );
}

#[test]
fn patched_jumps_preserve_behaviour_pie() {
    let (bin, disasm) = build_binary(true);
    let orig = run(&bin);
    let reqs = jump_sites(&disasm);
    let out = Rewriter::new(RewriteConfig::default())
        .rewrite(&bin, &disasm, &reqs, &[])
        .expect("rewrite");
    assert_eq!(out.stats.succeeded(), reqs.len());
    let patched = run(&out.binary);
    assert_eq!(patched.exit_code, orig.exit_code);
}

#[test]
fn patched_heap_writes_preserve_behaviour() {
    let (bin, disasm) = build_binary(false);
    let orig = run(&bin);
    let reqs = heap_write_sites(&disasm);
    assert!(!reqs.is_empty());
    let out = Rewriter::new(RewriteConfig::default())
        .rewrite(&bin, &disasm, &reqs, &[])
        .expect("rewrite");
    assert_eq!(out.stats.succeeded(), reqs.len());
    let patched = run(&out.binary);
    assert_eq!(patched.exit_code, orig.exit_code);
}

#[test]
fn patch_every_instruction_with_b0_fallback() {
    // The stress case (limitation L3): request a patch on *every*
    // instruction, with the B0 fallback enabled so unpatchable sites trap.
    let (bin, disasm) = build_binary(false);
    let orig = run(&bin);
    let reqs: Vec<PatchRequest> = disasm
        .iter()
        .map(|i| PatchRequest {
            addr: i.addr,
            template: Template::Empty,
        })
        .collect();
    let cfg = RewriteConfig {
        b0_fallback: true,
        ..RewriteConfig::default()
    };
    let out = Rewriter::new(cfg)
        .rewrite(&bin, &disasm, &reqs, &[])
        .expect("rewrite");
    assert_eq!(
        out.stats.total(),
        reqs.len(),
        "all requests accounted for"
    );
    assert_eq!(out.stats.failed, 0, "B0 fallback leaves no failures");
    let patched = run(&out.binary);
    assert_eq!(patched.exit_code, orig.exit_code);
    if out.stats.b0 > 0 {
        // Trap penalty must show up in the cost-weighted counter.
        assert!(patched.steps > patched.insns);
    }
}

#[test]
fn counter_template_counts_executions() {
    let (bin, disasm) = build_binary(false);
    let orig = run(&bin);
    // Put a counter cell in an extra data segment.
    let counter_vaddr = 0x30000000u64;
    let reqs = jump_sites(&disasm);
    let out = Rewriter::new(RewriteConfig::default())
        .rewrite(
            &bin,
            &disasm,
            &reqs
                .iter()
                .map(|r| PatchRequest {
                    addr: r.addr,
                    template: Template::Counter {
                        counter_addr: counter_vaddr,
                    },
                })
                .collect::<Vec<_>>(),
            &[e9patch::ExtraSegment {
                vaddr: counter_vaddr,
                bytes: vec![0u8; 4096],
                exec: false,
                write: true,
            }],
        )
        .expect("rewrite");
    assert_eq!(out.stats.succeeded(), reqs.len());
    let mut vm = Vm::new();
    load_elf(&mut vm, &out.binary).expect("load");
    let patched = vm.run(10_000_000).expect("run");
    assert_eq!(patched.exit_code, orig.exit_code);
    // The counter must have counted every executed patched jump.
    let count = vm.mem.read_le(counter_vaddr, 8).unwrap();
    assert!(count > 0, "counter never incremented");
}

#[test]
fn tactic_ablation_coverage_is_monotone() {
    let (bin, disasm) = build_binary(false);
    let reqs = jump_sites(&disasm);
    let mut prev = 0usize;
    for tactics in [
        Tactics::base_only(),
        Tactics {
            t1: true,
            t2: false,
            t3: false,
        },
        Tactics {
            t1: true,
            t2: true,
            t3: false,
        },
        Tactics::all(),
    ] {
        let cfg = RewriteConfig {
            tactics,
            ..RewriteConfig::default()
        };
        let out = Rewriter::new(cfg)
            .rewrite(&bin, &disasm, &reqs, &[])
            .expect("rewrite");
        assert!(
            out.stats.succeeded() >= prev,
            "coverage should not shrink as tactics are added"
        );
        prev = out.stats.succeeded();
        // Whatever was patched must still behave.
        let patched = run(&out.binary);
        let orig = run(&bin);
        assert_eq!(patched.exit_code, orig.exit_code);
    }
}

#[test]
fn grouping_does_not_change_behaviour() {
    let (bin, disasm) = build_binary(false);
    let orig = run(&bin);
    let reqs = jump_sites(&disasm);
    for (grouping, granularity) in [(true, 1), (true, 4), (false, 1)] {
        let cfg = RewriteConfig {
            grouping,
            granularity,
            ..RewriteConfig::default()
        };
        let out = Rewriter::new(cfg)
            .rewrite(&bin, &disasm, &reqs, &[])
            .expect("rewrite");
        let patched = run(&out.binary);
        assert_eq!(
            patched.exit_code, orig.exit_code,
            "grouping={grouping} M={granularity}"
        );
    }
}

/// Outcome of driving a binary from an arbitrary instruction address with
/// a fixed register state: how it terminates, plus its output.
#[derive(Debug, PartialEq, Eq)]
enum SiteOutcome {
    Exit(i32, Vec<u8>),
    /// A memory fault at a *data* address (rip differs between original
    /// and patched runs by design, the faulting address must not).
    Fault(u64),
    /// Any other architectural error (bad syscall number from a garbage
    /// register, undecodable bytes reached through garbage control flow) —
    /// both binaries must produce the same one.
    Error(String),
    Timeout,
}

fn run_from_site(binary: &[u8], site: u64, orig_entry: u64) -> SiteOutcome {
    let mut vm = Vm::new();
    load_elf(&mut vm, binary).expect("load");
    // Let any injected loader run: execute until rip reaches the original
    // entry (for the unpatched binary this is immediate).
    let mut guard = 0;
    while vm.cpu.rip != orig_entry {
        vm.step().expect("loader step");
        guard += 1;
        assert!(guard < 1_000_000, "loader never reached original entry");
    }
    // Deterministic register state; rbx gets a valid heap pointer so the
    // loop body's stores land somewhere mapped.
    let rsp = vm.cpu.get(Reg::Rsp);
    for (i, r) in Reg::ALL.iter().enumerate() {
        vm.cpu.set(*r, 0x1000 + i as u64);
    }
    vm.cpu.set(Reg::Rsp, rsp);
    vm.cpu.flags = Default::default();
    let heap = vm.heap.malloc(4096);
    let (lo, hi) = (heap, heap + 4096);
    // Map the pages the way the malloc pseudo-syscall would.
    {
        let mut page = lo & !0xFFF;
        while page < hi {
            if !vm.mem.is_mapped(page) {
                vm.mem.map_anon(page, 4096, e9vm::Perms::RW);
            }
            page += 4096;
        }
    }
    vm.cpu.set(Reg::Rbx, heap);
    vm.cpu.set(Reg::Rcx, 3);
    vm.cpu.rip = site;

    for _ in 0..100_000 {
        match vm.step() {
            Ok(true) => {}
            Ok(false) => {
                return SiteOutcome::Exit(vm.exit_code().unwrap_or(0), vm.output.clone())
            }
            Err(e9vm::VmError::Fault { fault, .. }) => {
                let addr = match fault {
                    e9vm::Fault::Unmapped(a) | e9vm::Fault::Protection(a) => a,
                };
                return SiteOutcome::Fault(addr);
            }
            Err(e9vm::VmError::BadSyscall(n)) => {
                return SiteOutcome::Error(format!("syscall {n:#x}"))
            }
            Err(e) => panic!("unexpected vm error from site {site:#x}: {e}"),
        }
    }
    SiteOutcome::Timeout
}

#[test]
fn jump_targets_preserved_after_patching() {
    // The paper's core guarantee: every original instruction address is
    // still a semantically valid jump target. Drive control flow directly
    // to each original instruction start (not just patch sites!) with an
    // identical register state in the original and patched binaries; the
    // observable outcome (exit code + output, or the faulting data
    // address) must match.
    let (bin, disasm) = build_binary(false);
    let reqs = jump_sites(&disasm);
    let out = Rewriter::new(RewriteConfig::default())
        .rewrite(&bin, &disasm, &reqs, &[])
        .expect("rewrite");
    let orig_entry = e9elf::Elf::parse(&bin).unwrap().entry();

    for insn in &disasm {
        let site = insn.addr;
        let want = run_from_site(&bin, site, orig_entry);
        let got = run_from_site(&out.binary, site, orig_entry);
        assert_eq!(got, want, "divergence entering at {site:#x}");
    }
}


#[test]
fn zero_requests_still_produces_valid_binary() {
    // Rewriting with an empty patch set must yield a working binary whose
    // loader simply maps nothing.
    let (bin, disasm) = build_binary(false);
    let orig = run(&bin);
    let out = Rewriter::new(RewriteConfig::default())
        .rewrite(&bin, &disasm, &[], &[])
        .expect("rewrite");
    assert_eq!(out.stats.total(), 0);
    assert_eq!(out.size.mappings, 0);
    let patched = run(&out.binary);
    assert_eq!(patched.exit_code, orig.exit_code);
    assert_eq!(patched.output, orig.output);
}

#[test]
fn patched_binary_is_itself_parseable_and_disassemblable() {
    // A downstream user can inspect the patched output with the same
    // tooling: the ELF parses, .text still disassembles (with punned
    // jumps now present), and the formatter renders every patched site.
    let (bin, disasm) = build_binary(false);
    let reqs = jump_sites(&disasm);
    let out = Rewriter::new(RewriteConfig::default())
        .rewrite(&bin, &disasm, &reqs, &[])
        .unwrap();
    let elf = e9elf::Elf::parse(&out.binary).expect("patched output parses");
    for req in &reqs {
        let bytes = elf.slice_at(req.addr, 8).unwrap();
        let insn = e9x86::decode(bytes, req.addr).expect("patched site decodes");
        let s = e9x86::fmt::format_insn(&insn);
        assert!(
            s.starts_with("jmp") || s == "int3",
            "site {:#x} renders as {s}",
            req.addr
        );
    }
}
