//! Cross-crate acceptance tests for the rewrite cache (PR 5): a cold run
//! populates the store, a warm run hits byte-identically — including from
//! a fresh process-like cache over the same directory — and a corrupted
//! disk entry degrades to a recomputed, still byte-identical result with
//! the verification-failure counter ticking.

use e9cache::{Cache, CacheConfig};
use e9front::{disassemble_text, instrument_cached, instrument_with_disasm};
use e9front::{Application, Options, Payload};
use e9proto::CacheDisposition;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("e9suite-cache-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn workload() -> (Vec<u8>, Vec<e9x86::insn::Insn>, Options) {
    let sb = e9synth::generate(&e9synth::Profile::tiny("suite-cache", false));
    let disasm = disassemble_text(&sb.binary).unwrap();
    (sb.binary, disasm, Options::new(Application::A1Jumps, Payload::Counter))
}

/// The on-disk object file for `hex` under `root` (CAS fan-out layout).
fn object_path(root: &std::path::Path, hex: &str) -> std::path::PathBuf {
    root.join("objects").join(&hex[..2]).join(&hex[2..])
}

#[test]
fn cold_run_stores_warm_run_hits_byte_identically() {
    let dir = tmpdir("warm");
    // The synth workload is tiny, far below the default bypass threshold;
    // these tests exercise the cache mechanics, so disable the bypass.
    let config = CacheConfig {
        dir: Some(dir.clone()),
        bypass_bytes: Some(0),
        ..CacheConfig::default()
    };
    let (bin, disasm, opts) = workload();
    let baseline = instrument_with_disasm(&bin, &disasm, &opts).unwrap();

    // Cold: miss, stored, and exactly the uncached pipeline's bytes.
    let cache = Cache::open(&config).unwrap();
    let cold = instrument_cached(&bin, &disasm, &opts, &cache).unwrap();
    let outcome = cold.cache.clone().expect("cached path must report an outcome");
    assert_eq!(outcome.disposition, CacheDisposition::Miss);
    assert_eq!(cold.rewrite.binary, baseline.rewrite.binary);
    assert_eq!(cache.stats().stores, 1);

    // Warm, same cache object: memory-tier hit.
    let warm = instrument_cached(&bin, &disasm, &opts, &cache).unwrap();
    let warm_outcome = warm.cache.clone().unwrap();
    assert_eq!(warm_outcome.disposition, CacheDisposition::Hit);
    assert_eq!(warm_outcome.digest, outcome.digest);
    assert_eq!(warm.rewrite.binary, baseline.rewrite.binary);
    assert_eq!(warm.rewrite.stats, baseline.rewrite.stats);
    assert_eq!(warm.rewrite.reports, baseline.rewrite.reports);
    assert_eq!(warm.rewrite.mappings, baseline.rewrite.mappings);
    assert!(cache.stats().mem_hits >= 1, "{:?}", cache.stats());

    // Warm, fresh cache over the same directory (a new `e9tool patch`
    // process): disk-tier hit, still byte-identical.
    let fresh = Cache::open(&config).unwrap();
    let disk_warm = instrument_cached(&bin, &disasm, &opts, &fresh).unwrap();
    assert_eq!(disk_warm.cache.clone().unwrap().disposition, CacheDisposition::Hit);
    assert_eq!(disk_warm.rewrite.binary, baseline.rewrite.binary);
    assert_eq!(fresh.stats().disk_hits, 1, "{:?}", fresh.stats());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tiny_input_bypasses_an_untuned_cache() {
    // Under the DEFAULT config (bypass threshold engaged) the same tiny
    // workload must skip the cache: correct bytes, `Bypass` disposition,
    // bypass counter ticking, and nothing keyed or stored.
    let dir = tmpdir("bypass");
    let config = CacheConfig {
        dir: Some(dir.clone()),
        ..CacheConfig::default()
    };
    let (bin, disasm, opts) = workload();
    let baseline = instrument_with_disasm(&bin, &disasm, &opts).unwrap();

    let cache = Cache::open(&config).unwrap();
    let res = instrument_cached(&bin, &disasm, &opts, &cache).unwrap();
    let outcome = res.cache.clone().expect("cached path must report an outcome");
    assert_eq!(outcome.disposition, CacheDisposition::Bypass);
    assert_eq!(outcome.digest, None, "bypassed runs are never keyed");
    assert_eq!(res.rewrite.binary, baseline.rewrite.binary);

    let stats = cache.stats();
    assert_eq!(stats.bypasses, 1, "{stats:?}");
    assert_eq!(stats.stores, 0, "{stats:?}");
    assert_eq!(stats.misses, 0, "{stats:?}");
    assert_eq!(stats.hits, 0, "{stats:?}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_disk_entry_degrades_to_recomputed_identical_output() {
    let dir = tmpdir("corrupt");
    let config = CacheConfig {
        dir: Some(dir.clone()),
        bypass_bytes: Some(0),
        ..CacheConfig::default()
    };
    let (bin, disasm, opts) = workload();

    // Prime the disk tier, then flip a byte in the stored object.
    let digest_hex = {
        let cache = Cache::open(&config).unwrap();
        let cold = instrument_cached(&bin, &disasm, &opts, &cache).unwrap();
        cold.cache.unwrap().digest.expect("miss carries the digest")
    };
    let object = object_path(&dir, &digest_hex);
    let mut stored = std::fs::read(&object).unwrap();
    let mid = stored.len() / 2;
    stored[mid] ^= 0x40;
    std::fs::write(&object, &stored).unwrap();

    // A fresh cache must detect the damage (verify-failure counter), fall
    // back to a cold rewrite with byte-identical output, quarantine the
    // bad entry, and leave the store serviceable (re-stored on miss).
    let baseline = instrument_with_disasm(&bin, &disasm, &opts).unwrap();
    let cache = Cache::open(&config).unwrap();
    let res = instrument_cached(&bin, &disasm, &opts, &cache).unwrap();
    assert_eq!(res.cache.clone().unwrap().disposition, CacheDisposition::Miss);
    assert_eq!(res.rewrite.binary, baseline.rewrite.binary);
    let stats = cache.stats();
    assert_eq!(stats.verify_failures, 1, "{stats:?}");
    assert_eq!(stats.stores, 1, "{stats:?}");
    assert!(
        dir.join("corrupt").join(&digest_hex).is_file(),
        "damaged entry must be quarantined"
    );

    // And the re-stored entry hits again, identically.
    let again = instrument_cached(&bin, &disasm, &opts, &cache).unwrap();
    assert_eq!(again.cache.clone().unwrap().disposition, CacheDisposition::Hit);
    assert_eq!(again.rewrite.binary, baseline.rewrite.binary);

    std::fs::remove_dir_all(&dir).ok();
}
