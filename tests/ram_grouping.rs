//! §4 at runtime: physical page grouping must reduce the *resident
//! physical memory* of the loaded, patched program — not just its file
//! size — because merged blocks are mapped (file-backed) at many virtual
//! addresses while sharing one physical copy.

use e9front::{instrument_with_disasm, Application, Options, Payload};
use e9patch::RewriteConfig;
use e9synth::{generate, Profile};
use e9vm::{load_elf, Vm};

/// Load a patched binary, run its injected loader to completion (so all
/// trampoline mappings exist), and report (virtual, physical) footprints.
fn footprint_after_loader(binary: &[u8], orig_entry: u64) -> (u64, u64) {
    let mut vm = Vm::new();
    load_elf(&mut vm, binary).expect("load");
    let mut guard = 0;
    while vm.cpu.rip != orig_entry {
        vm.step().expect("loader");
        guard += 1;
        assert!(guard < 10_000_000, "loader did not finish");
    }
    (vm.mem.virtual_footprint(), vm.mem.physical_footprint())
}

#[test]
fn grouping_reduces_resident_memory() {
    let mut p = Profile::tiny("ramtest", false);
    p.funcs = 16; // enough sites to spread trampolines over many pages
    let sb = generate(&p);

    let mut results = Vec::new();
    for grouping in [true, false] {
        let out = instrument_with_disasm(
            &sb.binary,
            &sb.disasm,
            &Options {
                app: Application::A1Jumps,
                payload: Payload::Empty,
                config: RewriteConfig {
                    grouping,
                    ..RewriteConfig::default()
                },
            },
        )
        .expect("instrument");
        assert!(out.rewrite.stats.succeeded() > 20);
        let (virt, phys) = footprint_after_loader(&out.rewrite.binary, sb.entry);
        results.push((grouping, virt, phys, out.rewrite.size.physical_blocks));
    }
    let (_, virt_g, phys_g, blocks_g) = results[0];
    let (_, virt_n, phys_n, blocks_n) = results[1];

    // Same virtual layout in both configurations (trampolines at identical
    // addresses), but grouping backs them with fewer physical pages.
    assert_eq!(virt_g, virt_n, "virtual layout must not depend on grouping");
    assert!(
        phys_g < phys_n,
        "grouping should reduce resident memory: grouped={phys_g} naive={phys_n}"
    );
    assert!(blocks_g < blocks_n);
}

#[test]
fn patched_behaviour_identical_across_backings() {
    let p = Profile::tiny("rambeh", false);
    let sb = generate(&p);
    let orig = e9vm::run_binary(&sb.binary, 100_000_000).unwrap();
    for grouping in [true, false] {
        let out = instrument_with_disasm(
            &sb.binary,
            &sb.disasm,
            &Options {
                app: Application::A1Jumps,
                payload: Payload::Empty,
                config: RewriteConfig {
                    grouping,
                    ..RewriteConfig::default()
                },
            },
        )
        .unwrap();
        let r = e9vm::run_binary(&out.rewrite.binary, 200_000_000).unwrap();
        assert_eq!(r.output, orig.output, "grouping={grouping}");
    }
}
