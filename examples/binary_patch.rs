//! Binary patching (the paper's Example 3.1 / Figure 2, modelled on
//! CVE-2019-18408): fix a bug at the *binary* level by diverting one
//! instruction through a trampoline that executes the missing code.
//!
//! The buggy program "frees" a context but forgets to set a
//! `start_new_table` flag, so a later phase reads a stale table and
//! produces a wrong answer. The developer's source patch adds
//! `flag = 1` after the free; we apply the equivalent at the binary level
//! by patching the first instruction after the `call`, exactly as the
//! paper does.
//!
//! Run with: `cargo run --release --example binary_patch`

use e9patch::{PatchRequest, RewriteConfig, Rewriter, Template};
use e9x86::asm::{Asm, Mem};
use e9x86::decode::linear_sweep;
use e9x86::reg::{Reg, Width};

const FLAG_ADDR: u64 = 0x403000;

/// The buggy binary: after `call free_ctx`, the flag should be set to 1
/// but isn't; the epilogue then reports `flag` as the exit code.
fn buggy_program() -> (Vec<u8>, u64) {
    let mut a = Asm::new(0x401000);
    let free_ctx = a.fresh_label();

    a.mov_ri32(Reg::Rbx, 7); // some live state
    a.call(free_ctx);
    // >>> patch location: first instruction after the call (the paper
    //     patches 0x422a61, the first instruction after `callq free`).
    let patch_site = a.here();
    a.mov_rr(Width::Q, Reg::Rbp, Reg::Rbx); // mov %rbx,%rbp (like Fig. 2's mov %ebx,%ebp)
    // ... missing here: flag = 1 ...
    // Epilogue: exit(flag).
    a.mov_ri64(Reg::Rax, FLAG_ADDR as i64);
    a.mov_rm(Width::Q, Reg::Rdi, Mem::base(Reg::Rax));
    a.mov_ri32(Reg::Rax, 60);
    a.syscall();

    a.bind(free_ctx);
    a.mov_ri32(Reg::Rcx, 0); // "ppmd7.free(&rar->context)"
    a.ret();

    let code = a.finish().unwrap();
    let mut b = e9elf::build::ElfBuilder::exec(0x400000);
    b.text(code, 0x401000);
    b.data(vec![0u8; 16], FLAG_ADDR); // the flag cell, initially 0
    b.entry(0x401000);
    (b.build(), patch_site)
}

/// The binary-level equivalent of the developer patch: set the flag, then
/// perform the displaced instruction's work, then resume. (Compare the
/// paper's Figure 2(e) patch trampoline.)
fn patch_code() -> Vec<u8> {
    let mut a = Asm::new(0); // position-independent: absolute addressing only
    a.push_r(Reg::Rax);
    a.mov_ri64(Reg::Rax, FLAG_ADDR as i64);
    a.mov_mi(Width::Q, Mem::base(Reg::Rax), 1); // rar->start_new_table = 1
    a.pop_r(Reg::Rax);
    a.mov_rr(Width::Q, Reg::Rbp, Reg::Rbx); // re-execute the displaced mov
    a.finish().unwrap()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (binary, patch_site) = buggy_program();

    let buggy = e9vm::run_binary(&binary, 100_000)?;
    println!("buggy run:   exit {} (flag never set — the bug)", buggy.exit_code);
    assert_eq!(buggy.exit_code, 0);

    // Disassemble and patch the single site — only *partial* disassembly
    // around the patch location is actually required (paper §3.3).
    let elf = e9elf::Elf::parse(&binary)?;
    let text = elf.section(".text").expect(".text");
    let disasm = linear_sweep(elf.section_bytes(".text").unwrap(), text.sh_addr);

    let out = Rewriter::new(RewriteConfig::default()).rewrite(
        &binary,
        &disasm,
        &[PatchRequest {
            addr: patch_site,
            template: Template::Replace {
                code: patch_code(),
                resume: None, // continue at the next instruction
            },
        }],
        &[],
    )?;
    println!(
        "patched 1 site via {:?} tactic mix: {:?}",
        if out.stats.t3 > 0 { "T3" } else { "B/T1/T2" },
        out.stats
    );

    let fixed = e9vm::run_binary(&out.binary, 100_000)?;
    println!("patched run: exit {} (flag set — bug fixed)", fixed.exit_code);
    assert_eq!(fixed.exit_code, 1);
    println!("binary-level patch applied successfully ✓");
    Ok(())
}
