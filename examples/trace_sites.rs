//! Execution tracing through binary rewriting: instrument every jump with
//! a hook that records the site address into a ring buffer, then read the
//! trace back — the building block of coverage-guided fuzzing on stripped
//! binaries (one of the paper's §1 motivating applications).
//!
//! Run with: `cargo run --release --example trace_sites`

use e9front::{instrument_with_disasm, Application, Options, Payload};
use e9synth::{generate, Profile};
use e9x86::fmt::format_insn;
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prog = generate(&Profile::tiny("trace-demo", false));
    let out = instrument_with_disasm(
        &prog.binary,
        &prog.disasm,
        &Options::new(Application::A1Jumps, Payload::Trace),
    )?;
    println!(
        "instrumented {} jump sites with the trace hook ({:.1}% coverage)",
        out.sites,
        out.rewrite.stats.succ_pct()
    );

    let mut vm = e9vm::Vm::new();
    e9vm::load_elf(&mut vm, &out.rewrite.binary)?;
    vm.run(200_000_000)?;

    let hdr = out.trace_addr.unwrap();
    let events = vm.mem.read_le(hdr, 8)?;
    let cap = vm.mem.read_le(hdr + 8, 8)?;
    println!("trace recorded {events} control-flow events (ring capacity {cap})");

    // Histogram of the hottest sites, annotated with their disassembly.
    let by_addr: HashMap<u64, &e9x86::Insn> =
        prog.disasm.iter().map(|i| (i.addr, i)).collect();
    let mut hist: HashMap<u64, u64> = HashMap::new();
    for i in 0..events.min(cap) {
        let site = vm.mem.read_le(hdr + 16 + i * 8, 8)?;
        *hist.entry(site).or_default() += 1;
    }
    let mut hottest: Vec<(u64, u64)> = hist.into_iter().collect();
    hottest.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("\nhottest traced jump sites:");
    for (site, n) in hottest.into_iter().take(8) {
        let what = by_addr
            .get(&site)
            .map(|i| format_insn(i))
            .unwrap_or_else(|| "?".into());
        println!("  {site:#x}  ×{n:<6} {what}");
    }
    Ok(())
}
