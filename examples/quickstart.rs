//! Quickstart: statically rewrite a binary without control flow recovery.
//!
//! Generates a small synthetic program, instruments every `jmp`/`jcc`
//! instruction with an "empty" trampoline (the paper's A1 application),
//! and runs both versions in the emulator to show behaviour is preserved.
//!
//! Run with: `cargo run --release --example quickstart`

use e9front::{instrument_with_disasm, Application, Options, Payload};
use e9synth::{generate, Profile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A workload binary (stand-in for a COTS executable).
    let prog = generate(&Profile::tiny("quickstart", false));
    println!(
        "input: {} bytes, {} instructions disassembled",
        prog.binary.len(),
        prog.disasm.len()
    );

    // 2. Instrument all jump instructions.
    let out = instrument_with_disasm(
        &prog.binary,
        &prog.disasm,
        &Options::new(Application::A1Jumps, Payload::Empty),
    )?;
    let s = &out.rewrite.stats;
    println!(
        "patched {} sites: B1={} B2={} T1={} T2={} T3={} failed={} (coverage {:.2}%)",
        s.total(),
        s.b1,
        s.b2,
        s.t1,
        s.t2,
        s.t3,
        s.failed,
        s.succ_pct()
    );
    println!(
        "output: {} bytes ({:.1}% of input), {} loader mappings",
        out.rewrite.binary.len(),
        out.rewrite.size.size_pct(),
        out.rewrite.size.mappings
    );

    // 3. Run both and compare.
    let orig = e9vm::run_binary(&prog.binary, 100_000_000)?;
    let patched = e9vm::run_binary(&out.rewrite.binary, 200_000_000)?;
    assert_eq!(orig.output, patched.output, "behaviour must be preserved");
    assert_eq!(orig.exit_code, patched.exit_code);
    println!(
        "original cost {} | patched cost {} (+{:.1}%) — identical output ✓",
        orig.steps,
        patched.steps,
        100.0 * (patched.steps as f64 / orig.steps as f64 - 1.0)
    );
    Ok(())
}
