//! Binary heap-write hardening (the paper's §6.3 application).
//!
//! Builds a program containing a deliberate heap buffer overflow, then
//! hardens the *binary* (no source!) by instrumenting every heap-write
//! instruction with a low-fat-pointer redzone check
//! (`p − base(p) ≥ 16`). Running under the low-fat allocator, the
//! overflow writes land in the next slot's redzone and are detected.
//!
//! Run with: `cargo run --release --example harden_heap`

use e9front::{instrument_with_disasm, Application, Options, Payload};
use e9x86::asm::{Asm, Mem};
use e9x86::decode::linear_sweep;
use e9x86::reg::{Reg, Width};

/// A program that mallocs a 100-byte object and writes 0..=N bytes — the
/// last writes run off the end of the object (a classic overflow).
fn buggy_program() -> Vec<u8> {
    let mut a = Asm::new(0x401000);
    // rbx = malloc(100)  (low-fat slot = 128 bytes ⇒ 112 usable after the
    // 16-byte front redzone; we write 120 qwords of garbage → overflow).
    a.mov_ri64(Reg::Rax, e9vm::SYS_MALLOC as i64);
    a.mov_ri32(Reg::Rdi, 100);
    a.syscall();
    a.mov_rr(Width::Q, Reg::Rbx, Reg::Rax);
    // for i in 0..120 { p[i] = i }  (byte stores)
    let top = a.fresh_label();
    a.mov_ri32(Reg::Rcx, 0);
    a.bind(top);
    a.mov_mr(Width::B, Mem::base_index(Reg::Rbx, Reg::Rcx, 1, 0), Reg::Rcx);
    a.add_ri(Width::Q, Reg::Rcx, 1);
    a.cmp_ri(Width::Q, Reg::Rcx, 120);
    a.jcc(e9x86::Cond::Ne, top);
    a.mov_ri32(Reg::Rax, 60);
    a.mov_ri32(Reg::Rdi, 0);
    a.syscall();
    let code = a.finish().unwrap();
    let mut b = e9elf::build::ElfBuilder::exec(0x400000);
    b.text(code, 0x401000);
    b.entry(0x401000);
    b.build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let binary = buggy_program();
    let elf = e9elf::Elf::parse(&binary)?;
    let text = elf.section(".text").expect(".text");
    let disasm = linear_sweep(elf.section_bytes(".text").unwrap(), text.sh_addr);

    // The overflow is invisible without instrumentation:
    let plain = e9vm::run_binary(&binary, 1_000_000)?;
    println!("un-hardened run: exit {} — overflow goes unnoticed", plain.exit_code);

    // Harden all heap writes with the low-fat redzone check.
    let out = instrument_with_disasm(
        &binary,
        &disasm,
        &Options::new(Application::A2HeapWrites, Payload::LowFat),
    )?;
    println!(
        "hardened {} heap-write sites (coverage {:.1}%)",
        out.sites,
        out.rewrite.stats.succ_pct()
    );

    // Run under the low-fat allocator and read the violation counter.
    let mut vm = e9vm::Vm::new();
    vm.set_heap(Box::new(e9lowfat::LowFatAllocator::new()));
    e9vm::load_elf(&mut vm, &out.rewrite.binary)?;
    let r = vm.run(10_000_000)?;
    let violations = vm.mem.read_le(out.violations_addr.unwrap(), 8)?;
    println!("hardened run: exit {}, redzone violations detected: {violations}", r.exit_code);

    // 100-byte object in a 128-byte slot: usable bytes = 112 (128 − 16
    // redzone); indices 112..120 fall into the next slot's redzone.
    assert_eq!(violations, 8, "expected exactly the 8 overflow writes");
    println!("the 8 out-of-bounds writes were caught ✓");
    Ok(())
}
