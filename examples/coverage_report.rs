//! Coverage anatomy: which tactic patches which site, and why coverage
//! differs between a non-PIE binary (negative punned offsets invalid) and
//! a PIE binary loaded high (both directions valid) — the paper's §5.1
//! PIE discussion.
//!
//! Run with: `cargo run --release --example coverage_report`

use e9front::{instrument_with_disasm, Application, Options, Payload};
use e9patch::{RewriteConfig, Tactics};
use e9synth::{generate, Profile};

fn report(name: &str, pie: bool) {
    let prog = generate(&Profile::tiny(name, pie));
    println!(
        "\n=== {name} ({}) — {} instructions ===",
        if pie { "PIE, high base" } else { "non-PIE @0x400000" },
        prog.disasm.len()
    );
    println!(
        "{:<26} {:>6} {:>7} {:>6} {:>6} {:>6} {:>8}",
        "tactic set", "#Loc", "Base%", "T1%", "T2%", "T3%", "Succ%"
    );
    for (label, tactics) in [
        ("B1/B2 only", Tactics::base_only()),
        ("all tactics", Tactics::all()),
    ] {
        let out = instrument_with_disasm(
            &prog.binary,
            &prog.disasm,
            &Options {
                app: Application::A1Jumps,
                payload: Payload::Empty,
                config: RewriteConfig {
                    tactics,
                    ..RewriteConfig::default()
                },
            },
        )
        .expect("instrument");
        let s = out.rewrite.stats;
        println!(
            "{:<26} {:>6} {:>7.2} {:>6.2} {:>6.2} {:>6.2} {:>8.2}",
            label,
            s.total(),
            s.base_pct(),
            s.t1_pct(),
            s.t2_pct(),
            s.t3_pct(),
            s.succ_pct()
        );
    }
}

fn main() {
    println!("Why PIE binaries are easier to patch (paper §5.1):");
    println!("non-PIE code sits at 0x400000, so punned rel32 values with the");
    println!("sign bit set point below zero — invalid. PIE code loads high,");
    println!("doubling the valid offsets.");
    report("coverage-demo", false);
    report("coverage-demo", true);
}
