#!/usr/bin/env bash
# Pre-merge verification — the documented gate for every PR.
#
# Fully hermetic: no network, no registry access (all dependencies are
# in-tree path crates; see "Hermetic build" in README.md). Runs:
#
#   1. tier-1: release build + full workspace test suite
#   2. bench smoke: every `cargo bench` target compiles and executes
#   3. seed-pinned reproducibility: two E9_SEED=42 synth+rewrite runs
#      must produce byte-identical artifacts
#   4. e9patchd smoke: a daemon on a temp Unix socket patches the same
#      binary through the wire protocol, byte-identical to step 3's
#      in-process output, and shuts down cleanly
#   5. fault-injection smoke: a seeded e9fault campaign (520 structured
#      mutants across the ELF and wire surfaces) must complete with zero
#      panics; failures print an E9FAULT_SEED replay line
#   6. parallel planning determinism: --jobs 1 and --jobs 4 must produce
#      byte-identical patched binaries (and match the sequential output),
#      plus a bench_parallel smoke run
#   7. rewrite cache: patching twice with --cache-dir must report a miss
#      then a hit with byte-identical output, a tiny input through a
#      default-threshold cache must report a bypass, --no-cache must skip
#      the store, contradictory flags must fail with exit 1, a seeded
#      cache-surface fault campaign must pass, and a quick full-ladder
#      bench run must show the warm memory hit beating the uncached
#      rewrite at the largest rung (the hot-path perf gate; the committed
#      results/bench_cache.json is restored afterwards)
#   8. serving core: the reactor (default) and legacy --threaded daemons
#      must patch byte-identically (and match the in-process output), the
#      TCP transport must serve a full job through e9tool --backend tcp:,
#      a seeded loop-surface fault campaign (hostile client behaviors
#      against a live reactor) must pass, and the bench_serve smoke runs
#      512 concurrent sessions against both serving modes with every
#      client asserting byte-identity against an in-process reference
#   9. environmental I/O faults: a seeded io-surface campaign (24 cases
#      driving ENOSPC/EIO/EINTR/short-write/failed-rename schedules
#      through full rewrite jobs against live daemons) must pass, and a
#      disk-full smoke boots a daemon whose cache CAS fails under an
#      E9FAILPOINTS ENOSPC schedule: rewrites stay byte-identical while
#      the disk circuit breaker trips to memory-only mode, probes, and
#      recovers — the whole walk observed through `e9tool health`
#  10. hook smoke: `e9tool hook --func 'f*' --call-original` must leave
#      program stdout byte-identical under e9vm while every counter
#      fires (the payload side effect), hook planning must be
#      byte-identical across --jobs 1 / --jobs 4 and through a live
#      daemon, and a run without --call-original must also preserve
#      stdout
#
# Knobs: E9QCHECK_CASES scales property-test depth (default 64);
# E9_SEED pins the generator seed used by step 3's CLI runs;
# E9FAULT_SEED pins the fault campaign seeds used by steps 5, 7, 8, 9.

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== tier-1: cargo build --release =="
cargo build --release --offline --workspace

echo "== tier-1: cargo test (workspace) =="
cargo test -q --offline --workspace

echo "== bench smoke (in-tree harness) =="
cargo bench -q --offline -p e9bench -- --smoke --no-json

echo "== seed-pinned reproducibility (E9_SEED=${E9_SEED:-42}) =="
export E9_SEED="${E9_SEED:-42}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
e9tool=(cargo run -q --release --offline -p e9front --bin e9tool --)
"${e9tool[@]}" gen --tiny verify -o "$tmp/a.elf"
"${e9tool[@]}" gen --tiny verify -o "$tmp/b.elf"
cmp "$tmp/a.elf" "$tmp/b.elf"
"${e9tool[@]}" patch "$tmp/a.elf" -o "$tmp/a.e9" --app a1 --verify
"${e9tool[@]}" patch "$tmp/b.elf" -o "$tmp/b.e9" --app a1 --verify
cmp "$tmp/a.e9" "$tmp/b.e9"
echo "byte-identical artifacts: ok"

echo "== e9patchd smoke (wire protocol vs in-process) =="
sock="$tmp/e9.sock"
target/release/e9patchd --socket "$sock" --max-conns 1 &
daemon_pid=$!
for _ in $(seq 1 100); do
  [ -S "$sock" ] && break
  sleep 0.05
done
[ -S "$sock" ] || { echo "daemon socket never appeared" >&2; exit 1; }
"${e9tool[@]}" patch "$tmp/a.elf" -o "$tmp/a.wire.e9" --app a1 --backend "$sock"
wait "$daemon_pid"
cmp "$tmp/a.e9" "$tmp/a.wire.e9"
echo "backend output byte-identical to in-process: ok"

echo "== fault-injection smoke (E9FAULT_SEED=${E9FAULT_SEED:-42}) =="
target/release/e9fault --seed "${E9FAULT_SEED:-42}" --elf-cases 320 --wire-cases 200
target/release/e9fault --seed "${E9FAULT_SEED:-42}" --elf-cases 0 --wire-cases 120 --jobs 4

echo "== parallel planning determinism (--jobs 1 vs --jobs 4) =="
"${e9tool[@]}" patch "$tmp/a.elf" -o "$tmp/a.j1.e9" --app a1 --verify --jobs 1
"${e9tool[@]}" patch "$tmp/a.elf" -o "$tmp/a.j4.e9" --app a1 --verify --jobs 4
cmp "$tmp/a.j1.e9" "$tmp/a.j4.e9"
"${e9tool[@]}" gen --profile perlbench --scale 200 -o "$tmp/p.elf"
"${e9tool[@]}" patch "$tmp/p.elf" -o "$tmp/p.j1.e9" --app a1 --jobs 1
"${e9tool[@]}" patch "$tmp/p.elf" -o "$tmp/p.j4.e9" --app a1 --jobs 4
cmp "$tmp/p.j1.e9" "$tmp/p.j4.e9"
echo "parallel output byte-identical across worker counts: ok"
cargo bench -q --offline -p e9bench --bench parallel -- --smoke --no-json

echo "== rewrite cache (cold store, warm hit, byte-identical) =="
cdir="$tmp/cache"
# The verify workload is tiny, below the default size bypass — disable
# the threshold here so the miss/hit mechanics are actually exercised.
"${e9tool[@]}" patch "$tmp/a.elf" -o "$tmp/a.c1.e9" --app a1 --cache-dir "$cdir" \
  --cache-bypass-bytes 0 | tee "$tmp/c1.log"
grep -q "cache: miss" "$tmp/c1.log" || { echo "first cached run did not miss" >&2; exit 1; }
"${e9tool[@]}" patch "$tmp/a.elf" -o "$tmp/a.c2.e9" --app a1 --cache-dir "$cdir" \
  --cache-bypass-bytes 0 | tee "$tmp/c2.log"
grep -q "cache: hit" "$tmp/c2.log" || { echo "second cached run did not hit" >&2; exit 1; }
cmp "$tmp/a.c1.e9" "$tmp/a.c2.e9"
cmp "$tmp/a.e9" "$tmp/a.c1.e9"
# Same tiny input through a DEFAULT-threshold cache: bypassed, not keyed.
"${e9tool[@]}" patch "$tmp/a.elf" -o "$tmp/a.cb.e9" --app a1 --cache-dir "$tmp/cache-bypass" \
  | tee "$tmp/cb.log"
grep -q "cache: bypass" "$tmp/cb.log" \
  || { echo "tiny input did not bypass a default-threshold cache" >&2; exit 1; }
cmp "$tmp/a.e9" "$tmp/a.cb.e9"
E9CACHE_DIR="$cdir" "${e9tool[@]}" patch "$tmp/a.elf" -o "$tmp/a.c3.e9" --app a1 --no-cache \
  | tee "$tmp/c3.log"
if grep -q "cache:" "$tmp/c3.log"; then
  echo "--no-cache still touched the cache" >&2; exit 1
fi
cmp "$tmp/a.e9" "$tmp/a.c3.e9"
if "${e9tool[@]}" patch "$tmp/a.elf" -o "$tmp/a.c4.e9" --app a1 \
    --no-cache --cache-dir "$cdir" 2>"$tmp/c4.log"; then
  echo "--no-cache with --cache-dir must fail" >&2; exit 1
fi
grep -q -- "--no-cache contradicts --cache-dir" "$tmp/c4.log" \
  || { echo "conflict diagnostic missing" >&2; cat "$tmp/c4.log" >&2; exit 1; }
echo "cache miss/hit byte-identical, size bypass and conflict diagnostics: ok"
target/release/e9fault --seed "${E9FAULT_SEED:-42}" --surface cache --cache-cases 120

echo "== cache hot-path perf gate (warm hit vs cold rewrite) =="
# Run the full ladder with few samples (quick but real measurements),
# then require the warm memory hit to beat the uncached rewrite at the
# largest rung. The committed results file is saved and restored — this
# run is a gate, not a results refresh.
bench_json="results/bench_cache.json"
cp "$bench_json" "$tmp/bench_cache.committed.json"
cargo bench -q --offline -p e9bench --bench cache -- --samples 3 | tee "$tmp/bench_cache.log"
median_ns() {
  grep -o "\"name\": \"$1\", \"median_ns\": [0-9.]*" "$bench_json" \
    | sed 's/.*median_ns.: //'
}
top_rung="128MiB"
warm="$(median_ns "patch_warm_mem/$top_rung")"
uncached="$(median_ns "patch_uncached/$top_rung")"
mv "$tmp/bench_cache.committed.json" "$bench_json"
[ -n "$warm" ] && [ -n "$uncached" ] \
  || { echo "perf gate: missing $top_rung medians in bench output" >&2; exit 1; }
grep "break-even" "$tmp/bench_cache.log" || true
if ! awk -v w="$warm" -v u="$uncached" 'BEGIN { exit !(w < u) }'; then
  echo "perf gate FAILED: warm hit ($warm ns) slower than uncached ($uncached ns) at $top_rung" >&2
  exit 1
fi
echo "perf gate: warm hit ($warm ns) beats uncached rewrite ($uncached ns) at $top_rung"

echo "== serving core: reactor vs threaded byte-identity =="
rsock="$tmp/e9.reactor.sock"
tsock="$tmp/e9.threaded.sock"
target/release/e9patchd --socket "$rsock" --max-conns 1 &
rpid=$!
target/release/e9patchd --socket "$tsock" --threaded --max-conns 1 &
tpid=$!
for _ in $(seq 1 100); do
  [ -S "$rsock" ] && [ -S "$tsock" ] && break
  sleep 0.05
done
[ -S "$rsock" ] && [ -S "$tsock" ] \
  || { echo "serving-core daemons never bound their sockets" >&2; exit 1; }
"${e9tool[@]}" patch "$tmp/a.elf" -o "$tmp/a.reactor.e9" --app a1 --backend "$rsock"
"${e9tool[@]}" patch "$tmp/a.elf" -o "$tmp/a.threaded.e9" --app a1 --backend "$tsock"
wait "$rpid"
wait "$tpid"
cmp "$tmp/a.reactor.e9" "$tmp/a.threaded.e9"
cmp "$tmp/a.e9" "$tmp/a.reactor.e9"
echo "reactor and threaded outputs byte-identical (and match in-process): ok"

echo "== serving core: TCP transport =="
target/release/e9patchd --listen-tcp 127.0.0.1:0 --max-conns 1 2>"$tmp/tcp.log" &
tcppid=$!
for _ in $(seq 1 100); do
  grep -q "listening on tcp" "$tmp/tcp.log" && break
  sleep 0.05
done
addr="$(sed -n 's/.*listening on tcp \([^ ]*\) .*/\1/p' "$tmp/tcp.log")"
[ -n "$addr" ] || { echo "daemon never announced its TCP address" >&2; exit 1; }
"${e9tool[@]}" patch "$tmp/a.elf" -o "$tmp/a.tcp.e9" --app a1 --backend "tcp:$addr"
wait "$tcppid"
cmp "$tmp/a.e9" "$tmp/a.tcp.e9"
echo "tcp backend output byte-identical to in-process: ok"

echo "== serving core: loop fault campaign + 512-connection smoke =="
target/release/e9fault --seed "${E9FAULT_SEED:-42}" --surface loop --loop-cases 24
cargo bench -q --offline -p e9bench --bench serve -- --smoke --no-json

echo "== environmental I/O fault campaign =="
target/release/e9fault --seed "${E9FAULT_SEED:-42}" --surface io --io-cases 24

echo "== disk-full degradation: breaker trip, probe, recovery via health =="
fsock="$tmp/e9.fault.sock"
E9FAILPOINTS="cache.disk.stage=enospc@first:4" \
E9FAILPOINTS_SEED="${E9FAULT_SEED:-42}" \
  target/release/e9patchd --socket "$fsock" --cache-dir "$tmp/fault-cas" \
  --cache-bypass-bytes 0 2>"$tmp/faultd.log" &
fpid=$!
for _ in $(seq 1 100); do
  [ -S "$fsock" ] && break
  sleep 0.05
done
[ -S "$fsock" ] || { echo "fault daemon never bound its socket" >&2; exit 1; }
grep -q "fault injection active" "$tmp/faultd.log" \
  || { echo "daemon did not announce fault injection" >&2; exit 1; }
# Twelve distinct inputs (one Table 1 profile each) -> twelve distinct
# cache keys, so every job is a miss + store attempt. The first:4
# ENOSPC schedule walks the breaker deterministically: jobs 0-2 fail
# their stores and trip it, jobs 3-5 fast-fail both lookup and store,
# job 6's store probes and eats the 4th injected fault, jobs 7-9
# fast-fail, job 10's store probes against the now-exhausted schedule
# and recovers, job 11 runs normally. Every rewrite must stay
# byte-identical to the in-process path throughout — disk-full degrades
# the cache, never the output.
fprofiles=(perlbench bzip2 gcc bwaves mcf milc gromacs leslie3d namd soplex hmmer sjeng)
i=0
for prof in "${fprofiles[@]}"; do
  "${e9tool[@]}" gen --profile "$prof" --scale 200 -o "$tmp/f$i.elf"
  "${e9tool[@]}" patch "$tmp/f$i.elf" -o "$tmp/f$i.wire.e9" --app a1 --backend "$fsock"
  "${e9tool[@]}" patch "$tmp/f$i.elf" -o "$tmp/f$i.ref.e9" --app a1
  cmp "$tmp/f$i.wire.e9" "$tmp/f$i.ref.e9"
  if [ "$i" -eq 4 ]; then
    "${e9tool[@]}" health --backend "$fsock" | tee "$tmp/health.mid.log"
    grep -q "cache breaker: OPEN" "$tmp/health.mid.log" \
      || { echo "breaker not open mid-outage" >&2; exit 1; }
  fi
  i=$((i + 1))
done
"${e9tool[@]}" health --backend "$fsock" | tee "$tmp/health.end.log"
grep -q "cache breaker: closed (1 trips, 1 recoveries, 14 fast-fails, 2 probes)" \
  "$tmp/health.end.log" \
  || { echo "breaker walk did not end in recovery with the pinned counters" >&2; exit 1; }
grep -q "faults:        enabled, 4 injected" "$tmp/health.end.log" \
  || { echo "health did not report the injected-fault count" >&2; exit 1; }
kill "$fpid" 2>/dev/null || true
wait "$fpid" 2>/dev/null || true
echo "disk-full walk: trip, probe, recovery, byte-identical throughout: ok"

echo "== hook smoke: differential behaviour + planner determinism =="
"${e9tool[@]}" gen --tiny hooksmoke -o "$tmp/h.elf"
"${e9tool[@]}" run "$tmp/h.elf" >"$tmp/h.orig.out"
# Call-original hooks: stdout must be untouched, counters must fire.
"${e9tool[@]}" hook "$tmp/h.elf" -o "$tmp/h.co.hk" --func 'f*' --call-original
"${e9tool[@]}" run "$tmp/h.co.hk" --hook-counters \
  >"$tmp/h.co.out" 2>"$tmp/h.co.counters"
cmp "$tmp/h.orig.out" "$tmp/h.co.out"
grep -E "^hook +[0-9]+ .* calls [1-9]" "$tmp/h.co.counters" >/dev/null \
  || { echo "no hook counter ever fired" >&2; cat "$tmp/h.co.counters" >&2; exit 1; }
# Plain (no call-original) hooks preserve stdout too.
"${e9tool[@]}" hook "$tmp/h.elf" -o "$tmp/h.plain.hk" --func 'f*'
"${e9tool[@]}" run "$tmp/h.plain.hk" >"$tmp/h.plain.out" 2>/dev/null
cmp "$tmp/h.orig.out" "$tmp/h.plain.out"
# Hook planning is deterministic across worker counts (like stage 6,
# sequential-vs-sharded may differ; every sharded width must agree)…
"${e9tool[@]}" hook "$tmp/h.elf" -o "$tmp/h.j1.hk" --func 'f*' --call-original --jobs 1
"${e9tool[@]}" hook "$tmp/h.elf" -o "$tmp/h.j4.hk" --func 'f*' --call-original --jobs 4
cmp "$tmp/h.j1.hk" "$tmp/h.j4.hk"
# …and through a live daemon serving the hook wire command.
hsock="$tmp/e9.hook.sock"
target/release/e9patchd --socket "$hsock" --max-conns 1 &
hpid=$!
for _ in $(seq 1 100); do
  [ -S "$hsock" ] && break
  sleep 0.05
done
[ -S "$hsock" ] || { echo "hook daemon never bound its socket" >&2; exit 1; }
"${e9tool[@]}" hook "$tmp/h.elf" -o "$tmp/h.wire.hk" --func 'f*' --call-original \
  --backend "$hsock"
wait "$hpid"
cmp "$tmp/h.co.hk" "$tmp/h.wire.hk"
echo "hooked stdout identical, counters fired, jobs/daemon byte-identical: ok"

echo "ALL CHECKS PASSED"
