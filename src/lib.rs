//! # e9suite — umbrella crate for the E9Patch reproduction
//!
//! This crate re-exports the workspace members and hosts the runnable
//! examples (`examples/`) and cross-crate integration tests (`tests/`).
//! See `README.md` for the architecture overview and `DESIGN.md` for the
//! per-experiment index.

pub use e9elf as elf;
pub use e9front as front;
pub use e9lowfat as lowfat;
pub use e9patch as patch;
pub use e9synth as synth;
pub use e9vm as vm;
pub use e9x86 as x86;
